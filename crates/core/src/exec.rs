//! The QPPT executor: interprets a [`Plan`] over a [`Database`] snapshot.
//!
//! Execution follows the indexed table-at-a-time contract: every operator
//! consumes whole indexes and produces exactly one output index, so the
//! number of inter-operator calls is "exactly one" per edge (§1). The join
//! kernels are the synchronous index scan (§4.2) and the batched
//! select-probe of the fused select-join (§4.3); assisting dimensions are
//! probed through the join buffer with batched lookups (§2.3).
//!
//! Execution is split into three phases so the morsel-driven parallel
//! subsystem (`qppt-par`) can re-compose them:
//!
//! 1. [`materialize_dim`] — dimension selections (σ), independent of each
//!    other and of the fact stream; parallelizable one task per dimension.
//! 2. [`run_pipeline`] — the fact-side pipeline (optional fact selection,
//!    then all composed join stages into the aggregating index). The
//!    stage-1 fact access can be restricted to a [`KeyRange`] morsel, which
//!    partitions the whole pipeline by the first join key.
//! 3. [`decode_result`] — decoding the (merged) aggregation index into the
//!    shared result format.
//!
//! [`execute`] composes the three sequentially (one morsel covering the
//! whole key domain), which is the paper's single-threaded execution model.

use std::sync::Arc;
use std::time::Instant;

use qppt_storage::{
    sync_scan_indexes, sync_scan_indexes_range, BaseIndex, CompiledPred, Database, MvccTable,
    PayloadBuf, QueryResult, ResultRow, Snapshot, StorageError, TreeIndex, Value,
};

use crate::batch::RowBatch;
use crate::inter::{AggTable, InterTable};
use crate::layout::{Layout, Src};
use crate::options::{BatchMode, PlanOptions};
use crate::plan::{DimHandleKind, JoinStage, MainInput, Plan, ResolvedDim, StageOutput};
use crate::stats::{ExecStats, OpStats};
use crate::QpptError;

/// Inclusive key range restricting the stage-1 fact access — one *morsel*
/// of the morsel-driven parallel executor. Keys are codes of the first
/// dimension's fact column (the stage-1 join attribute); restricting the
/// fact scan to `[lo, hi]` restricts every downstream stage to the tuples
/// deriving from those fact rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRange {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl KeyRange {
    /// The whole key domain (no restriction).
    pub fn full() -> Self {
        Self {
            lo: 0,
            hi: u64::MAX,
        }
    }

    /// `true` if `key` lies inside the range.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.lo <= key && key <= self.hi
    }
}

/// Materializes one dimension selection (a σ operator of Fig. 5) into an
/// intermediate indexed table keyed on the join attribute. Returns `None`
/// for dimensions that are not [`DimHandleKind::Materialized`] (base-index
/// and fused handles have no materialization step).
///
/// Dimension selections read only base indexes and are independent of each
/// other, so the parallel executor runs one such task per dimension.
pub fn materialize_dim(
    db: &Database,
    snap: Snapshot,
    plan: &Plan,
    dim_idx: usize,
) -> Result<Option<(InterTable, OpStats)>, QpptError> {
    let dim = &plan.dims[dim_idx];
    if dim.handle != DimHandleKind::Materialized {
        return Ok(None);
    }
    let t0 = Instant::now();
    let mut layout = Layout::new();
    for c in &dim.carried_names {
        layout.add(Src::Dim(dim.spec_idx), c);
    }
    let index = TreeIndex::for_domain(dim.join_key_max, plan.opts.prefer_kiss);
    let mut out = InterTable::new(&dim.join_col_name, layout, index);
    scan_dim_selection(db, snap, &plan.opts, dim, |key, carried| {
        out.insert(key, carried);
    })?;
    let stats = OpStats {
        label: format!("σ({}) → idx on {}", dim.table, dim.join_col_name),
        out_keys: out.key_count(),
        out_tuples: out.tuple_count(),
        index_kind: out.data.index.kind_name().to_string(),
        memory_bytes: out.memory_bytes(),
        micros: t0.elapsed().as_micros(),
    };
    Ok(Some((out, stats)))
}

/// One materialized dimension selection σ as an independently shareable
/// artifact: the intermediate `InterTable` plus the build-time operator
/// statistics (replayed into every execution that reuses the selection, so
/// operator lists keep their shape).
///
/// This is the unit the `qppt-cache` **dimension tier** stores: keyed by
/// [`fingerprint_dim`](crate::fingerprint::fingerprint_dim) + table
/// version, one entry is shared (via `Arc`) by every query — and every
/// concurrent execution — whose plan contains the same σ. The table is
/// read-only after construction; an `Arc` clone held by an executing query
/// keeps the data alive whatever the cache decides to evict.
#[derive(Debug)]
pub struct DimSelection {
    /// The materialized selection, keyed on the join attribute.
    pub table: InterTable,
    /// Build-time statistics of the materialization.
    pub op: OpStats,
}

impl DimSelection {
    /// Resident bytes of the materialized table (cache byte accounting).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.table.memory_bytes() + self.op.label.len()
    }
}

/// [`materialize_dim`] wrapped into the shareable [`DimSelection`] form —
/// the constructor used by every execution path and by the cache's
/// dimension tier on a miss.
pub fn materialize_dim_selection(
    db: &Database,
    snap: Snapshot,
    plan: &Plan,
    dim_idx: usize,
) -> Result<Option<Arc<DimSelection>>, QpptError> {
    Ok(materialize_dim(db, snap, plan, dim_idx)?
        .map(|(table, op)| Arc::new(DimSelection { table, op })))
}

/// A pre-materialized fused (select-join) dimension selection: the
/// `(join key, carried values)` tuples `scan_dim_selection` would yield for
/// the stage-1 `SelectProbe` dimension, **sorted by join key**.
///
/// The parallel executor builds this **once** and shares it read-only
/// across morsel workers, so the selection predicates are evaluated once
/// per query instead of once per morsel; sorting lets each worker
/// binary-search its [`KeyRange`] slice, making per-morsel work
/// proportional to the morsel's population rather than the whole
/// selection. Sequential execution does not need it (the inline scan runs
/// exactly once anyway).
#[derive(Debug)]
pub struct FusedSelection {
    /// Join keys, ascending (duplicates keep scan order).
    keys: Vec<u64>,
    /// `stride` carried values per key, parallel to `keys`.
    carried: Vec<u64>,
    stride: usize,
}

impl FusedSelection {
    /// Resident bytes of the sorted selection stream (cache byte
    /// accounting: this is the *query-private* part of a prepared query).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + (self.keys.capacity() + self.carried.capacity()) * 8
    }

    /// The index range of keys within `[range.lo, range.hi]`.
    fn slice(&self, range: Option<KeyRange>) -> std::ops::Range<usize> {
        match range {
            None => 0..self.keys.len(),
            Some(r) => {
                let lo = self.keys.partition_point(|&k| k < r.lo);
                let hi = self.keys.partition_point(|&k| k <= r.hi);
                lo..hi
            }
        }
    }
}

/// Materializes the stage-1 fused selection stream, if the plan has one
/// (i.e. stage 1 is a [`MainInput::SelectProbe`]).
pub fn materialize_fused_selection(
    db: &Database,
    snap: Snapshot,
    plan: &Plan,
) -> Result<Option<FusedSelection>, QpptError> {
    let MainInput::SelectProbe { main } = plan.stages[0].main else {
        return Ok(None);
    };
    let dim = &plan.dims[main];
    let stride = dim.carried_names.len();
    let mut entries: Vec<(u64, Vec<u64>)> = Vec::new();
    scan_dim_selection(db, snap, &plan.opts, dim, |key, c| {
        entries.push((key, c.to_vec()));
    })?;
    // Stable sort: duplicate join keys keep their scan order, so a
    // single-morsel run probes in the same relative order as sequential.
    entries.sort_by_key(|(key, _)| *key);
    let mut keys = Vec::with_capacity(entries.len());
    let mut carried = Vec::with_capacity(entries.len() * stride);
    for (key, c) in entries {
        keys.push(key);
        carried.extend_from_slice(&c);
    }
    Ok(Some(FusedSelection {
        keys,
        carried,
        stride,
    }))
}

/// Creates the empty aggregating output index (join-group sink) for a plan.
/// The parallel executor gives each worker its own and merges them with
/// [`AggTable::merge_from`].
pub fn new_agg_table(plan: &Plan) -> AggTable {
    let naggs = plan.aggs.len().max(1);
    let agg_max_key = if plan.group_key.total_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << plan.group_key.total_bits).saturating_sub(1)
    };
    AggTable::new(
        TreeIndex::for_domain(agg_max_key, plan.opts.prefer_kiss),
        naggs,
    )
}

/// Runs the fact-side pipeline: the optional materialized fact selection
/// (Fig. 8's non-fused plan) followed by every composed join stage,
/// aggregating into `agg`. `dim_tables` holds the materialized dimension
/// selections, one slot per plan dimension (`None` for base/fused
/// handles) — `Arc` handles shared read-only across partitions, executions,
/// and (through the cache's dimension tier) entire queries.
///
/// With `range = Some(r)`, the stage-1 fact access — synchronous base-index
/// scan, fused select-probe, or fact selection — is restricted to join keys
/// in `r`: this is one morsel of the parallel executor. `None` processes
/// the whole domain (sequential execution).
///
/// `fused` optionally supplies a pre-materialized stage-1 selection stream
/// (see [`FusedSelection`]); with `None`, a `SelectProbe` stage scans the
/// selection itself.
///
/// `batch` selects between the scalar row-at-a-time inner loops and the
/// columnar [`RowBatch`] paths. It is an **execution** parameter, not a
/// plan property: batch knobs are excluded from the cache fingerprints, so
/// a cached plan may carry stale `batch_*` options — callers derive the
/// mode from the *request's* options. Both modes visit the same tuples in
/// the same order and produce byte-identical aggregates.
///
/// Returns the per-operator statistics of this partition, in operator order
/// (fact selection first if present, then one entry per stage).
#[allow(clippy::too_many_arguments)]
pub fn run_pipeline(
    db: &Database,
    snap: Snapshot,
    plan: &Plan,
    dim_tables: &[Option<Arc<DimSelection>>],
    range: Option<KeyRange>,
    fused: Option<&FusedSelection>,
    batch: BatchMode,
    agg: &mut AggTable,
) -> Result<Vec<OpStats>, QpptError> {
    let mut stats: Vec<OpStats> = Vec::new();
    let fact_mvt = db.table(&plan.spec.fact)?;

    // Optional separate fact selection (the non-fused plan of Fig. 8).
    let fact_base = db.find_index(&plan.spec.fact, &plan.dims[0].fact_col_name)?;
    let fact_field_map = base_field_map(
        fact_base,
        &plan.spec.fact,
        &plan.fact_layout,
        &plan.dims[0].fact_col_name,
    )?;
    let mut stream: Option<InterTable> = None;
    if let Some(fs) = &plan.fact_select {
        let t0 = Instant::now();
        let fact_t = fact_mvt.table();
        let key_col = fact_t.schema().col(&plan.dims[0].fact_col_name)?;
        let cs = fact_t.stats(key_col);
        let max_key = if cs.min > cs.max { 0 } else { cs.max };
        let index = TreeIndex::for_domain(max_key, plan.opts.prefer_kiss);
        let mut out = InterTable::new(&plan.dims[0].fact_col_name, plan.fact_layout.clone(), index);
        let width = plan.fact_layout.width();
        let mut row = vec![0u64; width];
        let check_vis = !fact_mvt.fully_visible(snap);
        if batch.enabled {
            // Vectorized fact selection: buffer a block of (key, pid)
            // pairs from the range scan, gather the predicate lanes
            // row-major, then run visibility and every predicate over the
            // selection vector instead of branching per row. Survivors
            // late-materialize — they re-read their payload row and are
            // inserted in scan order, so the output index is
            // byte-identical to the scalar loop's.
            let payload = &fact_base.data.payload;
            let cols = pred_cols(&fs.preds);
            let mut rb = RowBatch::new(width, batch.rows);
            let mut cands: Vec<Cand> = Vec::with_capacity(batch.rows);
            let mut flush = |cands: &mut Vec<Cand>| {
                if cands.is_empty() {
                    return;
                }
                gather_pred_block(&mut rb, &fact_field_map, cands, payload, &cols);
                if check_vis {
                    rb.filter(|r| fact_mvt.visible(payload.row(cands[r].pid)[0] as u32, snap));
                }
                for p in &fs.preds {
                    rb.filter_pred(p);
                }
                for i in 0..rb.sel().len() {
                    let c = cands[rb.sel()[i] as usize];
                    fill_from_base(&fact_field_map, c.key, payload.row(c.pid), &mut row);
                    out.insert(c.key, &row);
                }
                cands.clear();
            };
            let mut visit = |key: u64, pid: u32| {
                cands.push(Cand {
                    key,
                    pid,
                    group: 0,
                    count: 0,
                });
                if cands.len() >= batch.rows {
                    flush(&mut cands);
                }
            };
            match range {
                None => fact_base.data.index.for_each(&mut visit),
                Some(r) => fact_base.data.index.range_each(r.lo, r.hi, &mut visit),
            }
            flush(&mut cands);
        } else {
            let mut visit = |key: u64, pid: u32| {
                let payload = fact_base.data.payload.row(pid);
                if check_vis && !fact_mvt.visible(payload[0] as u32, snap) {
                    return;
                }
                fill_from_base(&fact_field_map, key, payload, &mut row);
                if fs.preds.iter().all(|p| p.matches(|c| row[c])) {
                    out.insert(key, &row);
                }
            };
            match range {
                None => fact_base.data.index.for_each(&mut visit),
                Some(r) => fact_base.data.index.range_each(r.lo, r.hi, &mut visit),
            }
        }
        stats.push(OpStats {
            label: format!("σ(fact residuals) → idx on {}", plan.dims[0].fact_col_name),
            out_keys: out.key_count(),
            out_tuples: out.tuple_count(),
            index_kind: out.data.index.kind_name().to_string(),
            memory_bytes: out.memory_bytes(),
            micros: t0.elapsed().as_micros(),
        });
        stream = Some(out);
    }

    // Join stages.
    for (si, stage) in plan.stages.iter().enumerate() {
        let t0 = Instant::now();
        let mut assists = Vec::with_capacity(stage.assisting.len());
        for &a in &stage.assisting {
            let access = dim_access(db, snap, &plan.dims[a], dim_tables)?;
            let probe_pos = stage
                .work_layout
                .expect(Src::Fact, &plan.dims[a].fact_col_name);
            let fill_pos: Vec<usize> = plan.dims[a]
                .carried_names
                .iter()
                .map(|c| stage.work_layout.expect(Src::Dim(a), c))
                .collect();
            assists.push(AssistRt {
                access,
                probe_pos,
                fill_pos,
            });
        }
        let main_idx = match stage.main {
            MainInput::SyncScan { main } | MainInput::SelectProbe { main } => main,
        };
        let main_fill_pos: Vec<usize> = plan.dims[main_idx]
            .carried_names
            .iter()
            .map(|c| stage.work_layout.expect(Src::Dim(main_idx), c))
            .collect();

        let sink = match &stage.output {
            StageOutput::Agg => StageSink::Agg(&mut *agg),
            StageOutput::Inter { next } => {
                let key_name = &plan.dims[*next].fact_col_name;
                let fact_t = fact_mvt.table();
                let key_col = fact_t.schema().col(key_name)?;
                let s = fact_t.stats(key_col);
                let max_key = if s.min > s.max { 0 } else { s.max };
                StageSink::Inter(InterTable::new(
                    key_name,
                    stage.output_layout.clone(),
                    TreeIndex::for_domain(max_key, plan.opts.prefer_kiss),
                ))
            }
        };

        let input = stream.take();
        let width = stage.work_layout.width();
        let mut run = StageRun {
            plan,
            stage,
            snap,
            assists,
            main_fill_pos,
            sink,
            buffer: Vec::with_capacity(plan.opts.join_buffer * width.max(1)),
            rows: 0,
            width,
            cap: plan.opts.join_buffer,
            batch,
        };
        match stage.main {
            MainInput::SyncScan { main } => {
                let dim_acc = dim_access(db, snap, &plan.dims[main], dim_tables)?;
                match &input {
                    None => {
                        debug_assert_eq!(si, 0, "only stage 1 reads the fact base index");
                        run.sync_scan_base(fact_base, fact_mvt, &fact_field_map, &dim_acc, range);
                    }
                    Some(it) => run.sync_scan_inter(it, &dim_acc),
                }
            }
            MainInput::SelectProbe { main } => {
                debug_assert!(si == 0 && input.is_none());
                run.select_probe(
                    db,
                    fact_base,
                    fact_mvt,
                    &fact_field_map,
                    &plan.dims[main],
                    range,
                    fused,
                )?;
            }
        }
        run.flush();
        match run.sink {
            StageSink::Agg(a) => {
                stats.push(OpStats {
                    label: format!("{}-way star join-group", stage.ways),
                    out_keys: a.group_count(),
                    out_tuples: a.group_count(),
                    index_kind: a.index_kind().to_string(),
                    memory_bytes: a.memory_bytes(),
                    micros: t0.elapsed().as_micros(),
                });
            }
            StageSink::Inter(out) => {
                stats.push(OpStats {
                    label: format!("{}-way star join → idx on {}", stage.ways, out.key_name),
                    out_keys: out.key_count(),
                    out_tuples: out.tuple_count(),
                    index_kind: out.data.index.kind_name().to_string(),
                    memory_bytes: out.memory_bytes(),
                    micros: t0.elapsed().as_micros(),
                });
                stream = Some(out);
            }
        }
    }

    Ok(stats)
}

/// Per-part decode source for the packed group key — the dimension table
/// and column position behind each `group_key.sources` entry — resolved
/// **once per decode** instead of once per output row (the name/schema
/// lookups are pure, so hoisting them never changes bytes).
fn group_decode_sources<'a>(
    db: &'a Database,
    plan: &Plan,
) -> Vec<(&'a qppt_storage::Table, usize)> {
    plan.group_key
        .sources
        .iter()
        .map(|(di, col)| {
            let t = db
                .table(&plan.dims[*di].table)
                .expect("dim table resolved at plan time")
                .table();
            let c = t
                .schema()
                .col(col)
                .expect("group col resolved at plan time");
            (t, c)
        })
        .collect()
}

/// Streams the aggregation index through `emit` in index (ascending
/// packed-key) order, decoding group values either row at a time (scalar
/// mode) or lane-wise in `batch_rows`-sized runs (batched mode): a run
/// stages packed keys and accumulator snapshots, then each group-key lane
/// extracts and decodes its whole run against one hoisted
/// (table, column, dictionary) triple. Per-code decoding is pure, so the
/// run size changes only how often dictionary state is re-established —
/// never the emitted bytes. Like [`execute_agg`], this reads the batch
/// knobs off `plan.opts`: decode sits outside the cached-plan reuse path
/// that forces execution entry points to thread [`BatchMode`] explicitly,
/// and byte-identity makes a stale knob harmless regardless.
pub(crate) fn decode_groups(
    db: &Database,
    plan: &Plan,
    agg: &AggTable,
    mut emit: impl FnMut(u64, Vec<Value>, Vec<i64>),
) {
    let sources = group_decode_sources(db, plan);
    let batch = plan.opts.batch_mode();
    if !batch.enabled {
        agg.for_each_ordered(|key, accs| {
            let codes = plan.group_key.unpack(key);
            let values: Vec<Value> = codes
                .iter()
                .zip(sources.iter())
                .map(|(&code, &(t, c))| decode_code(t, c, code))
                .collect();
            emit(key, values, accs.to_vec());
        });
        return;
    }

    // Per-lane bit field of the packed key, precomputed once: `unpack`
    // reads lane `j` as `(key >> shift[j]) & mask[j]`.
    let mut lane_fields = Vec::with_capacity(plan.group_key.widths.len());
    let mut used = 0u8;
    for &w in &plan.group_key.widths {
        used += w;
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        lane_fields.push((plan.group_key.total_bits - used, mask));
    }

    let run = batch.rows;
    let mut keys: Vec<u64> = Vec::with_capacity(run);
    let mut accs_rows: Vec<Vec<i64>> = Vec::with_capacity(run);
    agg.for_each_ordered(|key, accs| {
        keys.push(key);
        accs_rows.push(accs.to_vec());
        if keys.len() == run {
            flush_group_run(&sources, &lane_fields, &mut keys, &mut accs_rows, &mut emit);
        }
    });
    flush_group_run(&sources, &lane_fields, &mut keys, &mut accs_rows, &mut emit);
}

/// Decodes one staged run lane-wise and drains it through `emit`. Lanes
/// fill each row's value vector in lane order, so per-row value order
/// matches the scalar path exactly.
fn flush_group_run(
    sources: &[(&qppt_storage::Table, usize)],
    lane_fields: &[(u8, u64)],
    keys: &mut Vec<u64>,
    accs_rows: &mut Vec<Vec<i64>>,
    emit: &mut impl FnMut(u64, Vec<Value>, Vec<i64>),
) {
    let n = keys.len();
    if n == 0 {
        return;
    }
    let mut values: Vec<Vec<Value>> = (0..n).map(|_| Vec::with_capacity(sources.len())).collect();
    let mut codes = vec![0u64; n];
    for (lane, &(t, c)) in sources.iter().enumerate() {
        let (shift, mask) = lane_fields[lane];
        for (code, &key) in codes.iter_mut().zip(keys.iter()) {
            *code = (key >> shift) & mask;
        }
        match t.schema().column(c).ty {
            qppt_storage::ColumnType::Int => {
                for (row, &code) in values.iter_mut().zip(codes.iter()) {
                    row.push(Value::Int(code as i64));
                }
            }
            qppt_storage::ColumnType::Str => {
                let dict = t.dict(c).expect("str column has dictionary");
                for (row, &code) in values.iter_mut().zip(codes.iter()) {
                    row.push(Value::Str(dict.decode(code as u32).to_string()));
                }
            }
        }
    }
    for ((key, vals), accs) in keys.drain(..).zip(values).zip(accs_rows.drain(..)) {
        emit(key, vals, accs);
    }
}

/// Decodes the (possibly merged) aggregation index into the shared result
/// format. The index iterates in key order, i.e. already grouped and sorted
/// (§3); [`QueryResult::apply_order`] then applies the query's ORDER BY on
/// top, which is a stable sort, so the result is deterministic regardless
/// of how many partitions fed `agg`. Under `batch_exec` the decode runs
/// lane-wise in `batch_rows`-sized runs (see [`decode_groups`]) — the
/// bytes are identical either way.
pub fn decode_result(db: &Database, plan: &Plan, agg: &AggTable) -> QueryResult {
    let mut rows = Vec::with_capacity(agg.group_count());
    decode_groups(db, plan, agg, |_key, key_values, agg_values| {
        rows.push(ResultRow {
            key_values,
            agg_values,
        });
    });
    let mut result = QueryResult {
        group_cols: plan
            .spec
            .group_by
            .iter()
            .map(|g| g.column.clone())
            .collect(),
        agg_cols: plan
            .spec
            .aggregates
            .iter()
            .map(|a| a.label.clone())
            .collect(),
        rows,
    };
    result.apply_order(&plan.spec.order_by);
    result
}

/// Runs a plan sequentially up to (and including) the aggregating index,
/// without decoding it: materialize every dimension selection, run the fact
/// pipeline over the whole key domain. The undecoded [`AggTable`] is what a
/// shard ships to the router as a partial aggregate; `total_micros` covers
/// the work done here (decode time, when it happens, is the caller's).
pub fn execute_agg(
    db: &Database,
    snap: Snapshot,
    plan: &Plan,
) -> Result<(AggTable, ExecStats), QpptError> {
    let started = Instant::now();
    let mut stats = ExecStats::default();

    // 1. Materialize dimension selections (σ operators of Fig. 5).
    let mut dim_tables: Vec<Option<Arc<DimSelection>>> = Vec::with_capacity(plan.dims.len());
    for di in 0..plan.dims.len() {
        match materialize_dim_selection(db, snap, plan, di)? {
            Some(sel) => {
                stats.push(sel.op.clone());
                dim_tables.push(Some(sel));
            }
            None => dim_tables.push(None),
        }
    }

    // 2–3. Fact selection + join stages into the aggregating index.
    // Fresh plans carry the request's batch knobs, so deriving the batch
    // mode from the plan is correct here (cached plans go through
    // `PreparedQuery`, which threads the request's mode explicitly).
    let mut agg = new_agg_table(plan);
    let batch = plan.opts.batch_mode();
    for op in run_pipeline(db, snap, plan, &dim_tables, None, None, batch, &mut agg)? {
        stats.push(op);
    }
    stats.total_micros = started.elapsed().as_micros();
    Ok((agg, stats))
}

/// Runs a plan sequentially, returning the result and per-operator
/// statistics: [`execute_agg`] plus the final decode of the aggregation
/// index into the shared result format.
pub fn execute(
    db: &Database,
    snap: Snapshot,
    plan: &Plan,
) -> Result<(QueryResult, ExecStats), QpptError> {
    let started = Instant::now();
    let (agg, mut stats) = execute_agg(db, snap, plan)?;
    let result = decode_result(db, plan, &agg);
    stats.total_micros = started.elapsed().as_micros();
    Ok((result, stats))
}

pub(crate) fn decode_code(t: &qppt_storage::Table, col: usize, code: u64) -> Value {
    match t.schema().column(col).ty {
        qppt_storage::ColumnType::Int => Value::Int(code as i64),
        qppt_storage::ColumnType::Str => Value::Str(
            t.dict(col)
                .expect("str column has dictionary")
                .decode(code as u32)
                .to_string(),
        ),
    }
}

/// Resolves a payload column on a base/composite index, failing with the
/// typed [`PlanError`](crate::validate::PlanError) the validate pass uses —
/// reachable only when a caller skipped
/// [`validate_indexes`](crate::validate::validate_indexes) against an
/// index set that predates the query.
fn payload_pos(pos: Option<usize>, table: &str, key: &str, col: &str) -> Result<usize, QpptError> {
    pos.ok_or_else(|| {
        QpptError::Plan(crate::validate::PlanError::IndexMissingColumn {
            table: table.to_string(),
            key: key.to_string(),
            column: col.to_string(),
        })
    })
}

/// How each layout column of a base-index stream is obtained.
#[derive(Debug, Clone, Copy)]
enum FieldSrc {
    /// The index key itself.
    Key,
    /// Base-index payload position (0 = rid).
    Payload(usize),
}

fn base_field_map(
    bi: &BaseIndex,
    table: &str,
    layout: &Layout,
    key_name: &str,
) -> Result<Vec<FieldSrc>, QpptError> {
    layout
        .columns()
        .iter()
        .map(|(src, name)| {
            debug_assert_eq!(*src, Src::Fact);
            if name == key_name {
                Ok(FieldSrc::Key)
            } else {
                payload_pos(bi.payload_pos_by_name(name), table, key_name, name)
                    .map(FieldSrc::Payload)
            }
        })
        .collect()
}

#[inline]
fn fill_from_base(map: &[FieldSrc], key: u64, payload: &[u64], out: &mut [u64]) {
    for (i, src) in map.iter().enumerate() {
        out[i] = match src {
            FieldSrc::Key => key,
            FieldSrc::Payload(p) => payload[*p],
        };
    }
}

/// One buffered candidate of a batched scan or probe, awaiting a block
/// flush: the join key, the fact payload row to gather, and the tuple
/// group of carried dim values it crosses with (`group` is the first
/// tuple's ordinal in the carried buffer, `count` the number of tuples —
/// a probe hit always crosses with exactly the selection tuple that
/// probed it, `count = 1`).
#[derive(Clone, Copy)]
struct Cand {
    key: u64,
    pid: u32,
    group: u32,
    count: u32,
}

/// The distinct layout columns a predicate set reads — the only lanes a
/// late-materializing gather has to fill before the block is filtered.
fn pred_cols(preds: &[CompiledPred]) -> Vec<usize> {
    let mut cols: Vec<usize> = preds
        .iter()
        .filter_map(|p| match p {
            CompiledPred::Range { col, .. } | CompiledPred::InSet { col, .. } => Some(*col),
            CompiledPred::Never => None,
        })
        .collect();
    cols.sort_unstable();
    cols.dedup();
    cols
}

/// The late-materializing gather: fills only the lanes in `cols` (the
/// columns the block's predicates read), leaving the rest zeroed. The walk
/// is **row-major** — the source payload is row-major and (for probes) the
/// pids land randomly in a fact table far bigger than cache, so touching
/// each source row exactly once costs one random access per row; a
/// lane-at-a-time gather would re-fetch every row once per lane. Survivors
/// re-read their payload row when they are emitted, so lanes no predicate
/// looks at are never worth gathering block-wide.
fn gather_pred_block(
    batch: &mut RowBatch,
    map: &[FieldSrc],
    cands: &[Cand],
    payload: &PayloadBuf,
    cols: &[usize],
) {
    batch.reset();
    let n = cands.len();
    let lanes = batch.lanes_filled(n, cols);
    for (r, c) in cands.iter().enumerate() {
        let row = payload.row(c.pid);
        for &i in cols {
            lanes[i][r] = match map[i] {
                FieldSrc::Key => c.key,
                FieldSrc::Payload(p) => row[p],
            };
        }
    }
    batch.seal(n);
}

/// Runtime access to a dimension's tuples during a join.
enum DimAccess<'a> {
    Base {
        bi: &'a BaseIndex,
        mvt: &'a MvccTable,
        carried_pos: Vec<usize>,
        /// `false` when the snapshot sees every version (no checks needed).
        check_visibility: bool,
    },
    Inter {
        it: &'a InterTable,
    },
}

impl<'a> DimAccess<'a> {
    fn index(&self) -> &TreeIndex {
        match self {
            DimAccess::Base { bi, .. } => &bi.data.index,
            DimAccess::Inter { it } => &it.data.index,
        }
    }

    /// Appends the carried values of `payload_id` to `out`; returns `false`
    /// (appending nothing) if the version is invisible at `snap`.
    #[inline]
    fn fetch(&self, payload_id: u32, snap: Snapshot, out: &mut Vec<u64>) -> bool {
        match self {
            DimAccess::Base {
                bi,
                mvt,
                carried_pos,
                check_visibility,
            } => {
                let row = bi.data.payload.row(payload_id);
                if *check_visibility && !mvt.visible(row[0] as u32, snap) {
                    return false;
                }
                out.extend(carried_pos.iter().map(|&p| row[p]));
                true
            }
            DimAccess::Inter { it } => {
                out.extend_from_slice(it.data.payload.row(payload_id));
                true
            }
        }
    }
}

fn dim_access<'a>(
    db: &'a Database,
    snap: Snapshot,
    dim: &ResolvedDim,
    dim_tables: &'a [Option<Arc<DimSelection>>],
) -> Result<DimAccess<'a>, QpptError> {
    match dim.handle {
        DimHandleKind::Materialized => Ok(DimAccess::Inter {
            it: &dim_tables[dim.spec_idx]
                .as_ref()
                .expect("materialized dims have tables")
                .table,
        }),
        DimHandleKind::Base | DimHandleKind::Fused => {
            let bi = db.find_index(&dim.table, &dim.join_col_name)?;
            let carried_pos: Vec<usize> = dim
                .carried_names
                .iter()
                .map(|c| payload_pos(bi.payload_pos_by_name(c), &dim.table, &dim.join_col_name, c))
                .collect::<Result<_, _>>()?;
            let mvt = db.table(&dim.table)?;
            Ok(DimAccess::Base {
                bi,
                mvt,
                carried_pos,
                check_visibility: !mvt.fully_visible(snap),
            })
        }
    }
}

struct AssistRt<'a> {
    access: DimAccess<'a>,
    probe_pos: usize,
    fill_pos: Vec<usize>,
}

// One StageSink exists per join stage; the size skew vs. the Agg variant is
// irrelevant and boxing would cost an indirection on the hot insert path.
#[allow(clippy::large_enum_variant)]
enum StageSink<'g> {
    Inter(InterTable),
    Agg(&'g mut AggTable),
}

struct StageRun<'a, 'p, 'g> {
    plan: &'p Plan,
    stage: &'p JoinStage,
    snap: Snapshot,
    assists: Vec<AssistRt<'a>>,
    main_fill_pos: Vec<usize>,
    sink: StageSink<'g>,
    /// Flat candidate buffer: `rows` work rows of `width` fields each.
    /// Flat storage keeps the join buffer allocation-free on the hot path.
    buffer: Vec<u64>,
    rows: usize,
    width: usize,
    cap: usize,
    batch: BatchMode,
}

impl<'a, 'p, 'g> StageRun<'a, 'p, 'g> {
    /// Builds candidates for one fact input row × the main dim's tuples
    /// (cross product, §4.2), appending directly into the flat join buffer.
    /// `carried` holds `count` tuples of `stride` carried values each.
    #[inline]
    fn emit_cross(&mut self, input: &[u64], carried: &[u64], stride: usize, count: usize) {
        for t in 0..count {
            let base = self.buffer.len();
            self.buffer.extend_from_slice(input);
            self.buffer.resize(base + self.width, 0);
            for (k, &pos) in self.main_fill_pos.iter().enumerate() {
                self.buffer[base + pos] = carried[t * stride + k];
            }
            self.rows += 1;
            if self.rows >= self.cap {
                self.flush();
            }
        }
    }

    /// Probes every assisting index (batched, §2.3) and emits survivors.
    fn flush(&mut self) {
        if self.rows == 0 {
            return;
        }
        let width = self.width;
        let n = self.rows;
        let snap = self.snap;
        let mut matched: Vec<bool> = vec![true; n];
        let mut keys: Vec<u64> = Vec::with_capacity(n);
        let mut scratch: Vec<u64> = Vec::new();
        for assist in &self.assists {
            keys.clear();
            for r in 0..n {
                keys.push(self.buffer[r * width + assist.probe_pos]);
            }
            let mut found: Vec<bool> = vec![false; n];
            // Disjoint field borrows: the probe writes carried values
            // straight into the flat buffer rows.
            let buffer = &mut self.buffer;
            assist.access.index().batch_get_each(&keys, |job, pid| {
                if found[job] || !matched[job] {
                    return; // join keys are unique per visible snapshot
                }
                scratch.clear();
                if assist.access.fetch(pid, snap, &mut scratch) {
                    found[job] = true;
                    let base = job * width;
                    for (k, &pos) in assist.fill_pos.iter().enumerate() {
                        buffer[base + pos] = scratch[k];
                    }
                }
            });
            for (m, f) in matched.iter_mut().zip(found.iter()) {
                *m &= *f;
            }
        }
        if self.batch.enabled && matches!(self.sink, StageSink::Agg(_)) {
            // Batch-grouped aggregate update: pack the group key and
            // evaluate the aggregate deltas for the whole surviving block
            // first, then accumulate run-length-wise — range scans emit
            // sorted keys, so consecutive survivors usually share a group
            // and collapse into a single index probe. Sums are commutative,
            // so the aggregate is byte-identical to per-row merging.
            let naggs = self.plan.aggs.len().max(1);
            let mut packed: Vec<u64> = Vec::with_capacity(n);
            let mut block: Vec<i64> = Vec::with_capacity(n * naggs);
            for (r, &keep) in matched.iter().enumerate() {
                if !keep {
                    continue;
                }
                let row = &self.buffer[r * width..(r + 1) * width];
                packed.push(self.plan.group_key.pack(row));
                for a in &self.plan.aggs {
                    block.push(a.eval(row));
                }
                if self.plan.aggs.is_empty() {
                    block.push(0);
                }
            }
            let StageSink::Agg(agg) = &mut self.sink else {
                unreachable!("checked above");
            };
            let mut acc = vec![0i64; naggs];
            let mut i = 0usize;
            while i < packed.len() {
                let key = packed[i];
                acc.copy_from_slice(&block[i * naggs..(i + 1) * naggs]);
                let mut j = i + 1;
                while j < packed.len() && packed[j] == key {
                    for (a, d) in acc.iter_mut().zip(&block[j * naggs..(j + 1) * naggs]) {
                        *a += *d;
                    }
                    j += 1;
                }
                agg.merge(key, &acc);
                i = j;
            }
            self.buffer.clear();
            self.rows = 0;
            return;
        }
        let mut out_row: Vec<u64> = Vec::with_capacity(self.stage.output_projection.len());
        let mut deltas: Vec<i64> = vec![0i64; self.plan.aggs.len().max(1)];
        for (r, &keep) in matched.iter().enumerate() {
            if !keep {
                continue;
            }
            let row = &self.buffer[r * width..(r + 1) * width];
            match &mut self.sink {
                StageSink::Inter(out) => {
                    let key = row[self.stage.output_key_pos];
                    out_row.clear();
                    out_row.extend(self.stage.output_projection.iter().map(|&p| row[p]));
                    out.insert(key, &out_row);
                }
                StageSink::Agg(agg) => {
                    let key = self.plan.group_key.pack(row);
                    for (ai, a) in self.plan.aggs.iter().enumerate() {
                        deltas[ai] = a.eval(row);
                    }
                    agg.merge(key, &deltas);
                }
            }
        }
        self.buffer.clear();
        self.rows = 0;
    }

    /// Stage-1 synchronous scan: fact base index × main dim index (§4.2),
    /// optionally restricted to one [`KeyRange`] morsel.
    fn sync_scan_base(
        &mut self,
        fact_base: &BaseIndex,
        fact_mvt: &MvccTable,
        field_map: &[FieldSrc],
        dim_acc: &DimAccess<'_>,
        range: Option<KeyRange>,
    ) {
        if self.batch.enabled {
            return self.sync_scan_base_batched(fact_base, fact_mvt, field_map, dim_acc, range);
        }
        let input_width = self.stage.input_layout.width();
        let stride = self.main_fill_pos.len();
        let snap = self.snap;
        let check_vis = !fact_mvt.fully_visible(snap);
        let mut dim_buf: Vec<u64> = Vec::new();
        let mut input_row: Vec<u64> = Vec::with_capacity(input_width);
        let visit =
            |key: u64, fids: &mut dyn Iterator<Item = u32>, dids: &mut dyn Iterator<Item = u32>| {
                dim_buf.clear();
                let mut count = 0usize;
                for did in dids {
                    if dim_acc.fetch(did, snap, &mut dim_buf) {
                        count += 1;
                    }
                }
                if count == 0 {
                    return;
                }
                // Cross product of fact tuples × dim tuples (§4.2).
                for fid in fids {
                    let payload = fact_base.data.payload.row(fid);
                    if check_vis && !fact_mvt.visible(payload[0] as u32, snap) {
                        continue;
                    }
                    input_row.clear();
                    input_row.resize(input_width, 0);
                    fill_from_base(field_map, key, payload, &mut input_row);
                    if self
                        .stage
                        .residuals
                        .iter()
                        .all(|p| p.matches(|c| input_row[c]))
                    {
                        self.emit_cross(&input_row, &dim_buf, stride, count);
                    }
                }
            };
        match range {
            None => sync_scan_indexes(&fact_base.data.index, dim_acc.index(), visit),
            Some(r) => {
                sync_scan_indexes_range(&fact_base.data.index, dim_acc.index(), r.lo, r.hi, visit)
            }
        }
    }

    /// Vectorized stage-1 synchronous scan: the scan yields `(key, fid)`
    /// candidates that are buffered up to `batch.rows`, then gathered
    /// lane-wise, filtered (visibility + residual predicates) over the
    /// selection vector, and cross-joined with their dimension tuple groups
    /// in scan order — the same tuple sequence as the scalar loop.
    fn sync_scan_base_batched(
        &mut self,
        fact_base: &BaseIndex,
        fact_mvt: &MvccTable,
        field_map: &[FieldSrc],
        dim_acc: &DimAccess<'_>,
        range: Option<KeyRange>,
    ) {
        let input_width = self.stage.input_layout.width();
        let stride = self.main_fill_pos.len();
        let snap = self.snap;
        let check_vis = !fact_mvt.fully_visible(snap);
        let rows = self.batch.rows;
        let mut rb = RowBatch::new(input_width, rows);
        // Per candidate: its dim-tuple group as (first tuple ordinal, tuple
        // count) into `dim_arena`. Groups stay valid across a flush (fact
        // rows of one key can straddle batch boundaries), so the arena is
        // only recycled between keys when no candidate references it.
        let mut cands: Vec<Cand> = Vec::with_capacity(rows);
        let mut dim_arena: Vec<u64> = Vec::new();
        let mut tuples: u32 = 0;
        let cols = pred_cols(&self.stage.residuals);
        let mut scratch = vec![0u64; input_width];
        let visit =
            |key: u64, fids: &mut dyn Iterator<Item = u32>, dids: &mut dyn Iterator<Item = u32>| {
                if cands.is_empty() {
                    dim_arena.clear();
                    tuples = 0;
                }
                let gstart = tuples;
                let mut count = 0u32;
                for did in dids {
                    if dim_acc.fetch(did, snap, &mut dim_arena) {
                        count += 1;
                    }
                }
                if count == 0 {
                    dim_arena.truncate(gstart as usize * stride);
                    return;
                }
                tuples += count;
                for fid in fids {
                    cands.push(Cand {
                        key,
                        pid: fid,
                        group: gstart,
                        count,
                    });
                    if cands.len() >= rows {
                        self.flush_block(
                            &mut rb,
                            field_map,
                            &mut cands,
                            &dim_arena,
                            &fact_base.data.payload,
                            fact_mvt,
                            check_vis,
                            stride,
                            &cols,
                            &mut scratch,
                        );
                    }
                }
            };
        match range {
            None => sync_scan_indexes(&fact_base.data.index, dim_acc.index(), visit),
            Some(r) => {
                sync_scan_indexes_range(&fact_base.data.index, dim_acc.index(), r.lo, r.hi, visit)
            }
        }
        self.flush_block(
            &mut rb,
            field_map,
            &mut cands,
            &dim_arena,
            &fact_base.data.payload,
            fact_mvt,
            check_vis,
            stride,
            &cols,
            &mut scratch,
        );
    }

    /// Flushes one block of buffered scan or probe candidates: a row-major
    /// gather of the predicate lanes, selection-vector filtering, then
    /// `emit_cross` of each late-materialized survivor with its group of
    /// carried dim tuples (`carried` is the buffer the candidates'
    /// `group`/`count` fields index into).
    ///
    /// A block nothing filters — no residual predicates, fully visible
    /// snapshot — skips the batch entirely and emits every candidate
    /// directly: there is no selection to vectorize, and the batched win
    /// downstream (the run-length grouped aggregate merge in
    /// [`flush`](Self::flush)) applies either way.
    #[allow(clippy::too_many_arguments)]
    fn flush_block(
        &mut self,
        rb: &mut RowBatch,
        field_map: &[FieldSrc],
        cands: &mut Vec<Cand>,
        carried: &[u64],
        payload: &PayloadBuf,
        fact_mvt: &MvccTable,
        check_vis: bool,
        stride: usize,
        cols: &[usize],
        scratch: &mut [u64],
    ) {
        if cands.is_empty() {
            return;
        }
        if self.stage.residuals.is_empty() && !check_vis {
            for &c in cands.iter() {
                fill_from_base(field_map, c.key, payload.row(c.pid), scratch);
                let s = c.group as usize * stride;
                let e = s + c.count as usize * stride;
                self.emit_cross(scratch, &carried[s..e], stride, c.count as usize);
            }
            cands.clear();
            return;
        }
        gather_pred_block(rb, field_map, cands, payload, cols);
        if check_vis {
            let snap = self.snap;
            rb.filter(|r| fact_mvt.visible(payload.row(cands[r].pid)[0] as u32, snap));
        }
        for p in &self.stage.residuals {
            rb.filter_pred(p);
        }
        for i in 0..rb.sel().len() {
            let c = cands[rb.sel()[i] as usize];
            fill_from_base(field_map, c.key, payload.row(c.pid), scratch);
            let s = c.group as usize * stride;
            let e = s + c.count as usize * stride;
            self.emit_cross(scratch, &carried[s..e], stride, c.count as usize);
        }
        cands.clear();
    }

    /// Stage-k synchronous scan: previous intermediate × main dim index.
    fn sync_scan_inter(&mut self, input: &InterTable, dim_acc: &DimAccess<'_>) {
        let stride = self.main_fill_pos.len();
        let snap = self.snap;
        let mut dim_buf: Vec<u64> = Vec::new();
        let mut fid_buf: Vec<u32> = Vec::new();
        sync_scan_indexes(&input.data.index, dim_acc.index(), |_key, fids, dids| {
            dim_buf.clear();
            let mut count = 0usize;
            for did in dids {
                if dim_acc.fetch(did, snap, &mut dim_buf) {
                    count += 1;
                }
            }
            if count == 0 {
                return;
            }
            fid_buf.clear();
            fid_buf.extend(fids);
            for &fid in &fid_buf {
                // Payload rows ARE the input layout for inter-table streams.
                self.emit_cross(input.data.payload.row(fid), &dim_buf, stride, count);
            }
        });
    }

    /// Fused select-join (§4.3): stream the main dimension's selection and
    /// point-probe the fact base index with batched lookups through the
    /// selection buffer. With a [`KeyRange`] morsel, only selection tuples
    /// whose join key falls inside the range probe the fact index; a
    /// pre-materialized [`FusedSelection`] replaces the per-call selection
    /// scan so morsel workers do not re-evaluate the predicates.
    #[allow(clippy::too_many_arguments)]
    fn select_probe(
        &mut self,
        db: &Database,
        fact_base: &BaseIndex,
        fact_mvt: &MvccTable,
        field_map: &[FieldSrc],
        dim: &ResolvedDim,
        range: Option<KeyRange>,
        fused: Option<&FusedSelection>,
    ) -> Result<(), QpptError> {
        let input_width = self.stage.input_layout.width();
        let cap = self.cap;
        let snap = self.snap;
        let stride = dim.carried_names.len();
        let mut probe_keys: Vec<u64> = Vec::with_capacity(cap);
        let mut probe_carried: Vec<u64> = Vec::with_capacity(cap * stride.max(1));

        // The selection stream is drained through a bounded buffer; each
        // chunk performs one batched probe into the fact index (§2.3).
        match fused {
            Some(fs) => {
                debug_assert_eq!(fs.stride, stride);
                // Binary-searched slice: work is proportional to the
                // morsel's population, not the whole selection.
                let span = fs.slice(range);
                probe_keys.extend_from_slice(&fs.keys[span.clone()]);
                probe_carried
                    .extend_from_slice(&fs.carried[span.start * stride..span.end * stride]);
            }
            None => {
                let opts = self.plan.opts;
                scan_dim_selection(db, snap, &opts, dim, |key, c| {
                    if let Some(r) = range {
                        if !r.contains(key) {
                            return;
                        }
                    }
                    probe_keys.push(key);
                    probe_carried.extend_from_slice(c);
                })?;
            }
        }
        let check_vis = !fact_mvt.fully_visible(snap);
        if self.batch.enabled {
            // Vectorized probe: the batched fact-index lookups yield
            // (selection ordinal, fact pid) hits that are buffered up to
            // `batch.rows`, gathered row-major, filtered over the selection
            // vector, and emitted with their carried dim values in hit
            // order — the same order the scalar callback processes them.
            let rows = self.batch.rows;
            let mut rb = RowBatch::new(input_width, rows);
            let mut cands: Vec<Cand> = Vec::with_capacity(rows);
            let cols = pred_cols(&self.stage.residuals);
            let mut scratch = vec![0u64; input_width];
            let mut start = 0usize;
            while start < probe_keys.len() {
                let end = (start + cap).min(probe_keys.len());
                let keys = &probe_keys[start..end];
                fact_base.data.index.batch_get_each(keys, |job, pid| {
                    cands.push(Cand {
                        key: keys[job],
                        pid,
                        group: (start + job) as u32,
                        count: 1,
                    });
                    if cands.len() >= rows {
                        self.flush_block(
                            &mut rb,
                            field_map,
                            &mut cands,
                            &probe_carried,
                            &fact_base.data.payload,
                            fact_mvt,
                            check_vis,
                            stride,
                            &cols,
                            &mut scratch,
                        );
                    }
                });
                start = end;
            }
            self.flush_block(
                &mut rb,
                field_map,
                &mut cands,
                &probe_carried,
                &fact_base.data.payload,
                fact_mvt,
                check_vis,
                stride,
                &cols,
                &mut scratch,
            );
            return Ok(());
        }
        let mut input_row: Vec<u64> = vec![0u64; input_width];
        let mut start = 0usize;
        while start < probe_keys.len() {
            let end = (start + cap).min(probe_keys.len());
            let keys = &probe_keys[start..end];
            fact_base.data.index.batch_get_each(keys, |job, pid| {
                let payload = fact_base.data.payload.row(pid);
                if check_vis && !fact_mvt.visible(payload[0] as u32, snap) {
                    return;
                }
                input_row.clear();
                input_row.resize(input_width, 0);
                fill_from_base(field_map, keys[job], payload, &mut input_row);
                if self
                    .stage
                    .residuals
                    .iter()
                    .all(|p| p.matches(|c| input_row[c]))
                {
                    let g = start + job;
                    self.emit_cross(
                        &input_row,
                        &probe_carried[g * stride..(g + 1) * stride],
                        stride,
                        1,
                    );
                }
            });
            start = end;
        }
        Ok(())
    }
}

/// Streams a dimension selection: scans the base index on the first
/// predicate's column, applies residual predicates from the carried
/// payload, checks MVCC visibility, and yields `(join key, carried values)`
/// per qualifying tuple. With `selection_via_set_ops`, multi-predicate
/// selections instead run one rid-set selection per predicate and intersect
/// them with the synchronous scan (§4.1).
pub fn scan_dim_selection(
    db: &Database,
    snap: Snapshot,
    opts: &PlanOptions,
    dim: &ResolvedDim,
    mut f: impl FnMut(u64, &[u64]),
) -> Result<(), QpptError> {
    let mvt = db.table(&dim.table)?;
    let check_vis = !mvt.fully_visible(snap);
    if dim.preds.is_empty() {
        // Pure scan of the base index on the join column.
        let bi = db.find_index(&dim.table, &dim.join_col_name)?;
        let carried_pos: Vec<usize> = dim
            .carried_names
            .iter()
            .map(|c| payload_pos(bi.payload_pos_by_name(c), &dim.table, &dim.join_col_name, c))
            .collect::<Result<_, _>>()?;
        let mut carried = vec![0u64; carried_pos.len()];
        bi.data.index.for_each(|key, pid| {
            let row = bi.data.payload.row(pid);
            if check_vis && !mvt.visible(row[0] as u32, snap) {
                return;
            }
            for (i, &p) in carried_pos.iter().enumerate() {
                carried[i] = row[p];
            }
            f(key, &carried);
        });
        return Ok(());
    }

    if let Some(md) = &dim.multidim {
        // §4.1: the whole conjunction is one contiguous range over the
        // multidimensional index — no residual predicates remain.
        let keys: Vec<&str> = md.key_names.iter().map(String::as_str).collect();
        let ci = db.find_composite_index(&dim.table, &keys)?;
        let (lo, hi) = ci.pack_range(&md.bounds);
        let ckey = md.key_names.join("+");
        let join_pos = payload_pos(
            ci.payload_pos_by_name(&dim.join_col_name),
            &dim.table,
            &ckey,
            &dim.join_col_name,
        )?;
        let carried_pos: Vec<usize> = dim
            .carried_names
            .iter()
            .map(|c| payload_pos(ci.payload_pos_by_name(c), &dim.table, &ckey, c))
            .collect::<Result<_, _>>()?;
        let mut carried = vec![0u64; carried_pos.len()];
        ci.data.index.range_each(lo, hi, |_, pid| {
            let row = ci.data.payload.row(pid);
            if check_vis && !mvt.visible(row[0] as u32, snap) {
                return;
            }
            for (i, &p) in carried_pos.iter().enumerate() {
                carried[i] = row[p];
            }
            f(row[join_pos], &carried);
        });
        return Ok(());
    }

    if opts.selection_via_set_ops && dim.preds.len() >= 2 {
        return scan_dim_selection_set_ops(db, snap, dim, f);
    }

    let bi = db.find_index(&dim.table, &dim.pred_cols[0])?;
    let key = dim.pred_cols[0].as_str();
    let join_pos = payload_pos(
        bi.payload_pos_by_name(&dim.join_col_name),
        &dim.table,
        key,
        &dim.join_col_name,
    )?;
    let residual_pos: Vec<usize> = dim.pred_cols[1..]
        .iter()
        .map(|c| payload_pos(bi.payload_pos_by_name(c), &dim.table, key, c))
        .collect::<Result<_, _>>()?;
    let carried_pos: Vec<usize> = dim
        .carried_names
        .iter()
        .map(|c| payload_pos(bi.payload_pos_by_name(c), &dim.table, key, c))
        .collect::<Result<_, _>>()?;
    let mut carried = vec![0u64; carried_pos.len()];
    let mut visit = |pid: u32| {
        let row = bi.data.payload.row(pid);
        if check_vis && !mvt.visible(row[0] as u32, snap) {
            return;
        }
        for (k, p) in dim.preds[1..].iter().enumerate() {
            if !pred_matches_value(p, row[residual_pos[k]]) {
                return;
            }
        }
        for (i, &p) in carried_pos.iter().enumerate() {
            carried[i] = row[p];
        }
        f(row[join_pos], &carried);
    };
    match &dim.preds[0] {
        CompiledPred::Range { lo, hi, .. } => {
            bi.data.index.range_each(*lo, *hi, |_, pid| visit(pid));
        }
        CompiledPred::InSet { codes, .. } => {
            for &code in codes {
                bi.data.index.get_each(code, &mut visit);
            }
        }
        CompiledPred::Never => {}
    }
    Ok(())
}

/// §4.1: per-predicate rid-set selections combined with `intersect`.
fn scan_dim_selection_set_ops(
    db: &Database,
    snap: Snapshot,
    dim: &ResolvedDim,
    mut f: impl FnMut(u64, &[u64]),
) -> Result<(), QpptError> {
    let mvt = db.table(&dim.table)?;
    let t = mvt.table();
    // One rid-keyed index per predicate.
    let mut rid_sets: Vec<TreeIndex> = Vec::with_capacity(dim.preds.len());
    for (k, pred) in dim.preds.iter().enumerate() {
        let bi = db.find_index(&dim.table, &dim.pred_cols[k])?;
        let mut set = TreeIndex::new_kiss();
        let mut add = |pid: u32| {
            let rid = bi.data.payload.row(pid)[0];
            set.insert(rid, 0);
        };
        match pred {
            CompiledPred::Range { lo, hi, .. } => {
                bi.data.index.range_each(*lo, *hi, |_, pid| add(pid))
            }
            CompiledPred::InSet { codes, .. } => {
                for &code in codes {
                    bi.data.index.get_each(code, &mut add);
                }
            }
            CompiledPred::Never => {}
        }
        rid_sets.push(set);
    }
    // Fold with intersections (synchronous scans over rid sets).
    let mut acc = rid_sets.remove(0);
    for other in &rid_sets {
        let mut next = TreeIndex::new_kiss();
        sync_scan_indexes(&acc, other, |rid, _, _| next.insert(rid, 0));
        acc = next;
    }
    // Fetch join key and carried columns from the row store (this is the
    // secondary-index path: random accesses into the storage layer).
    let join_col = t.schema().col(&dim.join_col_name)?;
    let carried_cols: Vec<usize> = dim
        .carried_names
        .iter()
        .map(|c| t.schema().col(c))
        .collect::<Result<_, StorageError>>()?;
    let mut carried = vec![0u64; carried_cols.len()];
    acc.for_each(|rid, _| {
        let rid = rid as u32;
        if !mvt.visible(rid, snap) {
            return;
        }
        for (i, &c) in carried_cols.iter().enumerate() {
            carried[i] = t.get(rid, c);
        }
        f(t.get(rid, join_col), &carried);
    });
    Ok(())
}

/// Evaluates a compiled predicate against a single already-fetched value.
#[inline]
fn pred_matches_value(p: &CompiledPred, value: u64) -> bool {
    match p {
        CompiledPred::Range { lo, hi, .. } => *lo <= value && value <= *hi,
        CompiledPred::InSet { codes, .. } => codes.binary_search(&value).is_ok(),
        CompiledPred::Never => false,
    }
}
