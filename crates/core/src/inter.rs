//! Intermediate indexed tables and aggregating output indexes.
//!
//! "Instead of passing plain tuples, columns, or vectors between individual
//! operators, our indexed table-at-a-time processing model exchanges
//! clustered indexes" (§1). An [`InterTable`] is one of those clustered
//! indexes: a [`TreeIndex`] keyed on whatever the *next* operator requested
//! (the cooperative-operator contract) plus a fixed-width payload buffer
//! described by a [`Layout`]. Intermediate tables are query-private: no
//! MVCC, no latching (§3).
//!
//! An [`AggTable`] is the output of a join-group operator: the index maps a
//! (possibly composite) group key to accumulator slots, and inserting an
//! existing key merges instead of appending — "the grouping happens
//! automatically as a side effect" (§3).

use qppt_storage::{IndexedTable, TreeIndex};

use crate::layout::Layout;

/// An intermediate indexed table (see module docs).
#[derive(Debug)]
pub struct InterTable {
    /// What the rows are keyed on, for plan explanation.
    pub key_name: String,
    /// Payload layout.
    pub layout: Layout,
    /// Index + payload storage.
    pub data: IndexedTable,
}

impl InterTable {
    /// Creates an empty intermediate table keyed on `key_name`.
    pub fn new(key_name: &str, layout: Layout, index: TreeIndex) -> Self {
        let width = layout.width();
        Self {
            key_name: key_name.to_string(),
            layout,
            data: IndexedTable::new(index, width),
        }
    }

    /// Inserts one tuple.
    #[inline]
    pub fn insert(&mut self, key: u64, row: &[u64]) {
        self.data.insert_row(key, row);
    }

    /// Number of stored tuples.
    pub fn tuple_count(&self) -> usize {
        self.data.tuple_count()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.data.index.len()
    }

    /// Resident memory estimate in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.memory_bytes()
    }
}

/// Aggregating output index: group key → accumulators.
#[derive(Debug)]
pub struct AggTable {
    index: TreeIndex,
    accs: Vec<i64>,
    naggs: usize,
    groups: usize,
}

impl AggTable {
    /// Creates an aggregation table with `naggs` accumulators per group.
    pub fn new(index: TreeIndex, naggs: usize) -> Self {
        Self {
            index,
            accs: Vec::new(),
            naggs: naggs.max(1),
            groups: 0,
        }
    }

    /// Adds `deltas` to the group `key`, creating the group on first touch.
    /// This is the §3 upsert: "If the insertion of such a composed key
    /// detects that the key is already present in the index, it only applies
    /// the aggregation function on the existing value and the new one."
    #[inline]
    pub fn merge(&mut self, key: u64, deltas: &[i64]) {
        debug_assert_eq!(deltas.len(), self.naggs);
        match self.index.get_first(key) {
            Some(slot) => {
                let base = slot as usize * self.naggs;
                for (i, d) in deltas.iter().enumerate() {
                    self.accs[base + i] += d;
                }
            }
            None => {
                let slot = (self.accs.len() / self.naggs) as u32;
                self.accs.extend_from_slice(deltas);
                self.index.insert(key, slot);
                self.groups += 1;
            }
        }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups
    }

    /// Accumulators per group.
    pub fn agg_width(&self) -> usize {
        self.naggs
    }

    /// Folds another aggregation table into this one — the parallel
    /// executor's partition merge. Group keys present in both tables have
    /// their accumulators added; keys only in `other` are created. Because
    /// the accumulators are sums, the merged table is independent of the
    /// merge order, and ordered iteration afterwards is byte-identical to a
    /// sequential execution over the union of the partitions.
    pub fn merge_from(&mut self, other: &AggTable) {
        debug_assert_eq!(self.naggs, other.naggs);
        other.for_each_ordered(|key, accs| self.merge(key, accs));
    }

    /// Iterates `(key, accumulators)` in ascending key order — the result
    /// "is already sorted" because it is physically a prefix tree (§3).
    pub fn for_each_ordered(&self, mut f: impl FnMut(u64, &[i64])) {
        self.index.for_each(|key, slot| {
            let base = slot as usize * self.naggs;
            f(key, &self.accs[base..base + self.naggs]);
        });
    }

    /// Resident memory estimate in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.index.memory_bytes() + self.accs.capacity() * 8
    }

    /// Index structure name (for statistics).
    pub fn index_kind(&self) -> &'static str {
        self.index.kind_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Src;
    use qppt_storage::KeyWidth;

    #[test]
    fn inter_table_roundtrip() {
        let mut layout = Layout::new();
        layout.add(Src::Fact, "lo_revenue");
        layout.add(Src::Dim(0), "d_year");
        let mut t = InterTable::new("lo_orderdate", layout, TreeIndex::new_kiss());
        t.insert(19930101, &[100, 1993]);
        t.insert(19930101, &[200, 1993]);
        t.insert(19940101, &[300, 1994]);
        assert_eq!(t.tuple_count(), 3);
        assert_eq!(t.key_count(), 2);
        let mut rows = Vec::new();
        t.data.rows_for_key(19930101, |r| rows.push(r.to_vec()));
        assert_eq!(rows, vec![vec![100, 1993], vec![200, 1993]]);
        assert!(t.memory_bytes() > 0);
    }

    #[test]
    fn agg_table_merges_and_orders() {
        let mut a = AggTable::new(TreeIndex::new_pt(KeyWidth::W64), 2);
        a.merge(5, &[10, 1]);
        a.merge(3, &[7, 1]);
        a.merge(5, &[32, 1]);
        assert_eq!(a.group_count(), 2);
        let mut got = Vec::new();
        a.for_each_ordered(|k, accs| got.push((k, accs.to_vec())));
        assert_eq!(got, vec![(3, vec![7, 1]), (5, vec![42, 2])]);
    }

    #[test]
    fn agg_table_scalar_key_zero() {
        // Scalar aggregates use the constant key 0.
        let mut a = AggTable::new(TreeIndex::new_kiss(), 1);
        for v in [5i64, 10, -3] {
            a.merge(0, &[v]);
        }
        assert_eq!(a.group_count(), 1);
        let mut sums = Vec::new();
        a.for_each_ordered(|_, accs| sums.push(accs[0]));
        assert_eq!(sums, vec![12]);
    }

    #[test]
    fn agg_table_merge_from_partitions() {
        // Three "partitions" with overlapping group keys must merge into
        // exactly the table a sequential run would have built.
        let mut seq = AggTable::new(TreeIndex::new_kiss(), 2);
        let mut parts: Vec<AggTable> = (0..3)
            .map(|_| AggTable::new(TreeIndex::new_kiss(), 2))
            .collect();
        for (i, (key, a, b)) in [
            (5u64, 10i64, 1i64),
            (3, 7, 1),
            (5, 32, 1),
            (9, -4, 2),
            (3, 1, 1),
            (5, 0, 1),
        ]
        .into_iter()
        .enumerate()
        {
            seq.merge(key, &[a, b]);
            parts[i % 3].merge(key, &[a, b]);
        }
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge_from(p);
        }
        assert_eq!(merged.group_count(), seq.group_count());
        assert_eq!(merged.agg_width(), 2);
        let collect = |t: &AggTable| {
            let mut v = Vec::new();
            t.for_each_ordered(|k, accs| v.push((k, accs.to_vec())));
            v
        };
        assert_eq!(collect(&merged), collect(&seq));
    }

    #[test]
    fn agg_table_negative_accumulators() {
        let mut a = AggTable::new(TreeIndex::new_kiss(), 1);
        a.merge(1, &[-100]);
        a.merge(1, &[30]);
        let mut got = Vec::new();
        a.for_each_ordered(|k, accs| got.push((k, accs[0])));
        assert_eq!(got, vec![(1, -70)]);
    }
}
