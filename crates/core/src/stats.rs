//! Per-operator execution statistics — the numbers the paper's demonstrator
//! overlays on the plan view (Appendix A): execution-time share per
//! operator, intermediate index sizes, and index types.

use std::fmt;

/// Statistics of one executed operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStats {
    /// Operator description (e.g. `"3-way star join → idx on lo_orderdate"`).
    pub label: String,
    /// Distinct keys in the operator's output index.
    pub out_keys: usize,
    /// Tuples in the operator's output.
    pub out_tuples: usize,
    /// Output index structure (`KISS-Tree`, `PrefixTree<64>`, …).
    pub index_kind: String,
    /// Resident bytes of the output index + payload.
    pub memory_bytes: usize,
    /// Operator wall time in microseconds.
    pub micros: u128,
}

/// Statistics of a whole query execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    pub ops: Vec<OpStats>,
    /// End-to-end wall time in microseconds (≥ sum of operator times; the
    /// difference is planning/decoding overhead).
    pub total_micros: u128,
}

impl ExecStats {
    /// Appends one operator's record.
    pub fn push(&mut self, op: OpStats) {
        self.ops.push(op);
    }

    /// Total time spent inside operators.
    pub fn operator_micros(&self) -> u128 {
        self.ops.iter().map(|o| o.micros).sum()
    }

    /// Share of operator time spent in the given operator (0..=1).
    pub fn share(&self, idx: usize) -> f64 {
        let total = self.operator_micros();
        if total == 0 {
            0.0
        } else {
            self.ops[idx].micros as f64 / total as f64
        }
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total: {:.3} ms", self.total_micros as f64 / 1000.0)?;
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(
                f,
                "  [{}] {:<55} {:>9.3} ms ({:>4.1}%)  keys={:<9} tuples={:<9} {} {:.1} KiB",
                i,
                op.label,
                op.micros as f64 / 1000.0,
                self.share(i) * 100.0,
                op.out_keys,
                op.out_tuples,
                op.index_kind,
                op.memory_bytes as f64 / 1024.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let mut s = ExecStats::default();
        for micros in [100u128, 300, 600] {
            s.push(OpStats {
                label: "op".into(),
                out_keys: 1,
                out_tuples: 1,
                index_kind: "KISS-Tree".into(),
                memory_bytes: 0,
                micros,
            });
        }
        let total: f64 = (0..3).map(|i| s.share(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(s.operator_micros(), 1000);
    }

    #[test]
    fn empty_stats_display() {
        let s = ExecStats::default();
        assert_eq!(s.share(0).to_bits(), 0f64.to_bits()); // no ops → 0 share, no panic path used
        assert!(format!("{s}").contains("total"));
    }
}
