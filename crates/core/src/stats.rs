//! Per-operator execution statistics — the numbers the paper's demonstrator
//! overlays on the plan view (Appendix A): execution-time share per
//! operator, intermediate index sizes, and index types.

use std::fmt;

/// Statistics of one executed operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStats {
    /// Operator description (e.g. `"3-way star join → idx on lo_orderdate"`).
    pub label: String,
    /// Distinct keys in the operator's output index.
    pub out_keys: usize,
    /// Tuples in the operator's output.
    pub out_tuples: usize,
    /// Output index structure (`KISS-Tree`, `PrefixTree<64>`, …).
    pub index_kind: String,
    /// Resident bytes of the output index + payload.
    pub memory_bytes: usize,
    /// Operator wall time in microseconds.
    pub micros: u128,
}

impl OpStats {
    /// Folds another partition's record of the **same operator** into this
    /// one (parallel execution: one record per worker/morsel). Output sizes
    /// and memory add up; `micros` becomes summed *CPU* time across workers
    /// rather than wall time. Deterministic given the same partition set,
    /// whatever order the partitions finished in.
    ///
    /// Caveat: summed `out_keys` counts a key once **per partition** it
    /// appears in. Partitions are disjoint in the stage-1 join key, but an
    /// operator keyed on a *different* attribute (later-stage intermediates,
    /// the final join-group) can see the same key in several partitions, so
    /// its summed `out_keys` is an upper bound on distinct keys. The
    /// parallel engine re-reports the final join-group from the merged
    /// index, where the exact count is available.
    pub fn absorb_partition(&mut self, other: &OpStats) {
        debug_assert_eq!(self.label, other.label, "partition stats must align");
        self.out_keys += other.out_keys;
        self.out_tuples += other.out_tuples;
        self.memory_bytes += other.memory_bytes;
        self.micros += other.micros;
    }
}

/// Statistics of a whole query execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    pub ops: Vec<OpStats>,
    /// End-to-end wall time in microseconds (≥ sum of operator times; the
    /// difference is planning/decoding overhead).
    pub total_micros: u128,
}

impl ExecStats {
    /// Appends one operator's record.
    pub fn push(&mut self, op: OpStats) {
        self.ops.push(op);
    }

    /// Total time spent inside operators.
    pub fn operator_micros(&self) -> u128 {
        self.ops.iter().map(|o| o.micros).sum()
    }

    /// Folds one partition's operator records into this execution's, record
    /// by record (parallel execution). The two lists must describe the same
    /// operator sequence; a partition that reports more operators than seen
    /// so far (e.g. the first partition merged into an empty `ExecStats`)
    /// contributes its extra records verbatim.
    ///
    /// Merging partitions in worker-index order makes the merged statistics
    /// deterministic for a given partition set — no dependence on which
    /// worker finished first.
    pub fn merge_partition(&mut self, part: &ExecStats) {
        for (i, op) in part.ops.iter().enumerate() {
            match self.ops.get_mut(i) {
                Some(mine) => mine.absorb_partition(op),
                None => self.ops.push(op.clone()),
            }
        }
    }

    /// Share of operator time spent in the given operator (0..=1).
    pub fn share(&self, idx: usize) -> f64 {
        let total = self.operator_micros();
        if total == 0 {
            0.0
        } else {
            self.ops[idx].micros as f64 / total as f64
        }
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total: {:.3} ms", self.total_micros as f64 / 1000.0)?;
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(
                f,
                "  [{}] {:<55} {:>9.3} ms ({:>4.1}%)  keys={:<9} tuples={:<9} {} {:.1} KiB",
                i,
                op.label,
                op.micros as f64 / 1000.0,
                self.share(i) * 100.0,
                op.out_keys,
                op.out_tuples,
                op.index_kind,
                op.memory_bytes as f64 / 1024.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let mut s = ExecStats::default();
        for micros in [100u128, 300, 600] {
            s.push(OpStats {
                label: "op".into(),
                out_keys: 1,
                out_tuples: 1,
                index_kind: "KISS-Tree".into(),
                memory_bytes: 0,
                micros,
            });
        }
        let total: f64 = (0..3).map(|i| s.share(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(s.operator_micros(), 1000);
    }

    #[test]
    fn partition_merge_aligns_and_sums() {
        let op = |label: &str, keys: usize, micros: u128| OpStats {
            label: label.into(),
            out_keys: keys,
            out_tuples: keys * 2,
            index_kind: "KISS-Tree".into(),
            memory_bytes: 64,
            micros,
        };
        let part = |a: usize, b: usize| ExecStats {
            ops: vec![op("σ(date)", a, 10), op("3-way star join-group", b, 20)],
            total_micros: 0,
        };
        let mut merged = ExecStats::default();
        merged.merge_partition(&part(3, 5));
        merged.merge_partition(&part(4, 6));
        assert_eq!(merged.ops.len(), 2);
        assert_eq!(merged.ops[0].out_keys, 7);
        assert_eq!(merged.ops[1].out_keys, 11);
        assert_eq!(merged.ops[1].out_tuples, 22);
        assert_eq!(merged.ops[0].micros, 20);
        assert_eq!(merged.ops[0].memory_bytes, 128);
    }

    #[test]
    fn absorbed_out_keys_is_an_upper_bound_under_overlap() {
        // Partitions are disjoint in the stage-1 join key, but a
        // later-stage operator keyed on another attribute can see the
        // same key in several partitions. Model a join-group keyed on
        // d_year: partition A sees years {1992, 1993, 1994}, partition B
        // sees {1993, 1994, 1995} — 4 distinct years overall.
        let part = |keys: &[u32]| OpStats {
            label: "3-way star join-group".into(),
            out_keys: keys.len(),
            out_tuples: keys.len() * 10,
            index_kind: "KISS-Tree".into(),
            memory_bytes: 256,
            micros: 50,
        };
        let (a_keys, b_keys) = ([1992u32, 1993, 1994], [1993u32, 1994, 1995]);
        let mut merged = part(&a_keys);
        merged.absorb_partition(&part(&b_keys));

        let distinct: std::collections::BTreeSet<u32> =
            a_keys.iter().chain(b_keys.iter()).copied().collect();
        // The documented caveat: summed out_keys counts 1993 and 1994
        // once per partition, so 6 — a strict upper bound on the 4
        // distinct keys, never the exact count under overlap.
        assert_eq!(merged.out_keys, 6);
        assert_eq!(distinct.len(), 4);
        assert!(merged.out_keys >= distinct.len());
        // The additive fields stay exact regardless of key overlap.
        assert_eq!(merged.out_tuples, 60);
        assert_eq!(merged.memory_bytes, 512);
        assert_eq!(merged.micros, 100);
    }

    #[test]
    fn empty_stats_display() {
        let s = ExecStats::default();
        assert_eq!(s.share(0).to_bits(), 0f64.to_bits()); // no ops → 0 share, no panic path used
        assert!(format!("{s}").contains("total"));
    }
}
