//! Physical and logical plan optimization options.
//!
//! These are exactly the knobs the paper's demonstrator exposes (Appendix A,
//! Fig. 10): select-join composition on/off, the join/selection buffer size
//! (1 = unbuffered, 64, 512, 2048), and the maximum multi-way/star join
//! width (2-way … multi-way). Two extra switches cover §2.2's index choice
//! (KISS vs. prefix tree) and §4.1's set-operator selection strategy.
//!
//! On top of the paper's knobs sit the **parallel execution** knobs consumed
//! by the `qppt-par` subsystem: worker count ([`PlanOptions::parallelism`]),
//! morsel granularity ([`PlanOptions::morsel_bits`]), and per-operator-class
//! switches ([`PlanOptions::par_selections`], [`PlanOptions::par_scans`],
//! [`PlanOptions::par_joins`]). They default to `parallelism = 1`, i.e. the
//! paper's single-threaded execution model, so existing callers are
//! unaffected unless they opt in.

/// Plan options for the QPPT engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptions {
    /// Compose selections with the successive join (§4.3). When off, every
    /// selection materializes an intermediate indexed table first.
    pub select_join: bool,
    /// Join/selection buffer size in tuples; enables the batched index
    /// lookups and inserts of §2.3. `1` disables buffering.
    pub join_buffer: usize,
    /// Maximum number of tables one composed join operator may touch
    /// (2 = traditional binary joins, 5 = SSB's widest star join).
    pub max_join_ways: usize,
    /// Use the KISS-Tree for 32-bit key domains (§2.2). When off, every
    /// index is a `k′ = 4` prefix tree.
    pub prefer_kiss: bool,
    /// Process multi-predicate selections as per-predicate rid-set
    /// selections combined with set operators (§4.1's intersect path)
    /// instead of index-scan + residual filtering.
    pub selection_via_set_ops: bool,
    /// Use multidimensional (composite-key) base indexes for eligible
    /// conjunctive selections (§4.1: "the selection operator prefers to
    /// operate on a multidimensional index as input"). Eligible = equality
    /// predicates on all leading columns, at most a range on the last.
    pub multidim_selections: bool,
    /// Worker count for the morsel-driven parallel executor (`qppt-par`).
    /// `1` (the default) is sequential execution; `QpptEngine::run` ignores
    /// this knob entirely — only the parallel entry points consult it.
    pub parallelism: usize,
    /// Morsel granularity: the key domain of the stage-1 join attribute is
    /// split on its top `morsel_bits` bits, i.e. into up to
    /// `2^morsel_bits` top-level prefix ranges. More morsels give better
    /// load balancing (workers steal whole morsels) at slightly higher
    /// scheduling overhead. Must be in `1..=16`; the default of 6 yields up
    /// to 64 morsels.
    pub morsel_bits: u8,
    /// Parallelize the *selection* operator class: materialized dimension
    /// selections run as one task per dimension on the worker pool.
    pub par_selections: bool,
    /// Parallelize the *synchronous index scan* operator class: a stage-1
    /// sync-scan pipeline is partitioned into [`KeyRange`](crate::KeyRange)
    /// morsels. When off, plans whose first stage is a sync scan run their
    /// pipeline sequentially even under `run_parallel`.
    pub par_scans: bool,
    /// Parallelize the *composed join* operator class: a stage-1 fused
    /// select-join (select-probe) pipeline is partitioned into morsels.
    /// When off, such pipelines run sequentially even under `run_parallel`.
    pub par_joins: bool,
    /// Build base/composite indexes with partitioned parallel sorts on a
    /// shared worker pool (`qppt_par::prepare_indexes_pooled`): row ids are
    /// bucketed on the top [`morsel_bits`](Self::morsel_bits) of the key
    /// domain — the same prefix partitioning scans use — and each bucket
    /// sorts as one pool task. Off by default (sequential builds); the
    /// resulting indexes are bit-identical either way, and
    /// [`prepare_indexes`](crate::plan::prepare_indexes) ignores the switch
    /// entirely (it has no pool).
    pub par_index_build: bool,
    /// Vectorized batch execution: run the stage-1/stage-N inner loops of
    /// the pipeline over columnar [`RowBatch`](crate::batch::RowBatch)es
    /// (lane-wise payload gathers, selection-vector predicate filtering,
    /// run-length-grouped aggregate merges) instead of one row at a time.
    /// Off by default. Results are byte-identical either way — batched and
    /// scalar executions share cached σ materializations and results, so
    /// this knob is deliberately **excluded** from the cache fingerprints.
    pub batch_exec: bool,
    /// Row capacity of each columnar batch when [`batch_exec`]
    /// (Self::batch_exec) is on. `1` is the degenerate row-at-a-time batch
    /// (useful for shaking out boundary bugs); must be `>= 1`. Like
    /// `batch_exec`, never part of the cache fingerprints.
    pub batch_rows: usize,
}

/// The execution-time batch switch derived from [`PlanOptions`] via
/// [`PlanOptions::batch_mode`].
///
/// Batch knobs are excluded from the cache fingerprints (byte-identity lets
/// scalar and batched executions share cached plans, σ, and results), so a
/// cached `Plan`'s embedded `opts` may carry a *stale* batch setting — the
/// one the cold request used. Execution entry points therefore take the
/// request's `BatchMode` explicitly instead of reading `plan.opts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchMode {
    /// Whether the vectorized batch paths run.
    pub enabled: bool,
    /// Batch capacity in rows (`>= 1`; meaningless when disabled).
    pub rows: usize,
}

impl BatchMode {
    /// Scalar row-at-a-time execution (the default).
    pub const SCALAR: BatchMode = BatchMode {
        enabled: false,
        rows: 1,
    };
}

impl Default for BatchMode {
    fn default() -> Self {
        Self::SCALAR
    }
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self {
            select_join: true,
            join_buffer: 512,
            max_join_ways: 5,
            prefer_kiss: true,
            selection_via_set_ops: false,
            multidim_selections: false,
            parallelism: 1,
            morsel_bits: 6,
            par_selections: true,
            par_scans: true,
            par_joins: true,
            par_index_build: false,
            batch_exec: false,
            batch_rows: 1024,
        }
    }
}

impl PlanOptions {
    /// The demonstrator's buffer-size choices.
    pub const JOIN_BUFFER_CHOICES: [usize; 4] = [1, 64, 512, 2048];

    /// Validates option invariants.
    pub fn validate(&self) -> Result<(), crate::QpptError> {
        if self.join_buffer == 0 {
            return Err(crate::QpptError::InvalidOptions(
                "join_buffer must be >= 1".into(),
            ));
        }
        if self.max_join_ways < 2 {
            return Err(crate::QpptError::InvalidOptions(
                "max_join_ways must be >= 2".into(),
            ));
        }
        if self.parallelism == 0 {
            return Err(crate::QpptError::InvalidOptions(
                "parallelism must be >= 1".into(),
            ));
        }
        if self.morsel_bits == 0 || self.morsel_bits > 16 {
            return Err(crate::QpptError::InvalidOptions(
                "morsel_bits must be in 1..=16".into(),
            ));
        }
        if self.batch_rows == 0 {
            return Err(crate::QpptError::InvalidOptions(
                "batch_rows must be >= 1".into(),
            ));
        }
        Ok(())
    }

    /// The execution-time [`BatchMode`] these options request. See the
    /// `BatchMode` docs for why executions thread this explicitly instead
    /// of reading a (possibly cached, possibly stale) `plan.opts`.
    pub fn batch_mode(&self) -> BatchMode {
        BatchMode {
            enabled: self.batch_exec,
            rows: self.batch_rows.max(1),
        }
    }

    /// Builder-style setter.
    pub fn with_select_join(mut self, on: bool) -> Self {
        self.select_join = on;
        self
    }

    /// Builder-style setter.
    pub fn with_join_buffer(mut self, size: usize) -> Self {
        self.join_buffer = size;
        self
    }

    /// Builder-style setter.
    pub fn with_max_join_ways(mut self, ways: usize) -> Self {
        self.max_join_ways = ways;
        self
    }

    /// Builder-style setter.
    pub fn with_prefer_kiss(mut self, on: bool) -> Self {
        self.prefer_kiss = on;
        self
    }

    /// Builder-style setter.
    pub fn with_set_ops(mut self, on: bool) -> Self {
        self.selection_via_set_ops = on;
        self
    }

    /// Builder-style setter.
    pub fn with_multidim(mut self, on: bool) -> Self {
        self.multidim_selections = on;
        self
    }

    /// Builder-style setter for the parallel worker count.
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Builder-style setter for the morsel granularity.
    pub fn with_morsel_bits(mut self, bits: u8) -> Self {
        self.morsel_bits = bits;
        self
    }

    /// Builder-style setter for the per-operator-class parallel switches
    /// (selections, synchronous scans, composed joins).
    pub fn with_par_ops(mut self, selections: bool, scans: bool, joins: bool) -> Self {
        self.par_selections = selections;
        self.par_scans = scans;
        self.par_joins = joins;
        self
    }

    /// Builder-style setter for the parallel index-build switch.
    pub fn with_par_index_build(mut self, on: bool) -> Self {
        self.par_index_build = on;
        self
    }

    /// Builder-style setter for vectorized batch execution.
    pub fn with_batch_exec(mut self, on: bool) -> Self {
        self.batch_exec = on;
        self
    }

    /// Builder-style setter for the batch row capacity.
    pub fn with_batch_rows(mut self, rows: usize) -> Self {
        self.batch_rows = rows;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper_defaults() {
        let o = PlanOptions::default();
        assert!(o.select_join);
        assert_eq!(o.join_buffer, 512);
        assert_eq!(o.max_join_ways, 5);
        assert!(o.prefer_kiss);
        assert!(!o.selection_via_set_ops);
        assert!(!o.multidim_selections);
        assert_eq!(o.parallelism, 1);
        assert_eq!(o.morsel_bits, 6);
        assert!(o.par_selections && o.par_scans && o.par_joins);
        assert!(!o.par_index_build);
        assert!(!o.batch_exec);
        assert_eq!(o.batch_rows, 1024);
        let mode = o.batch_mode();
        assert!(!mode.enabled);
        assert_eq!(mode.rows, 1024);
        assert_eq!(BatchMode::default(), BatchMode::SCALAR);
        assert!(o.validate().is_ok());
    }

    #[test]
    fn invalid_options_rejected() {
        assert!(PlanOptions::default()
            .with_join_buffer(0)
            .validate()
            .is_err());
        assert!(PlanOptions::default()
            .with_max_join_ways(1)
            .validate()
            .is_err());
        assert!(PlanOptions::default()
            .with_parallelism(0)
            .validate()
            .is_err());
        assert!(PlanOptions::default()
            .with_morsel_bits(0)
            .validate()
            .is_err());
        assert!(PlanOptions::default()
            .with_morsel_bits(17)
            .validate()
            .is_err());
        assert!(PlanOptions::default()
            .with_batch_rows(0)
            .validate()
            .is_err());
        assert!(PlanOptions::default()
            .with_parallelism(8)
            .with_morsel_bits(16)
            .validate()
            .is_ok());
        assert!(PlanOptions::default()
            .with_batch_exec(true)
            .with_batch_rows(1)
            .validate()
            .is_ok());
    }

    #[test]
    fn builders_chain() {
        let o = PlanOptions::default()
            .with_select_join(false)
            .with_join_buffer(64)
            .with_max_join_ways(2)
            .with_prefer_kiss(false)
            .with_set_ops(true)
            .with_multidim(true)
            .with_parallelism(4)
            .with_morsel_bits(8)
            .with_par_ops(false, true, false)
            .with_par_index_build(true)
            .with_batch_exec(true)
            .with_batch_rows(64);
        assert!(o.par_index_build);
        assert!(o.batch_exec);
        assert_eq!(o.batch_rows, 64);
        let mode = o.batch_mode();
        assert!(mode.enabled);
        assert_eq!(mode.rows, 64);
        assert!(!o.select_join);
        assert!(o.multidim_selections);
        assert_eq!(o.join_buffer, 64);
        assert_eq!(o.max_join_ways, 2);
        assert!(!o.prefer_kiss);
        assert!(o.selection_via_set_ops);
        assert_eq!(o.parallelism, 4);
        assert_eq!(o.morsel_bits, 8);
        assert!(!o.par_selections && o.par_scans && !o.par_joins);
    }
}
