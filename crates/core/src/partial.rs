//! Partial aggregates — the undecoded group→sum pairs a shard ships to the
//! router in distributed serving.
//!
//! QPPT's aggregation output is an index keyed on the packed composite
//! group key ([`GroupKey`](crate::plan::GroupKey)); merging partitions is
//! an ordered fold of commutative sums
//! ([`AggTable::merge_from`](crate::inter::AggTable::merge_from)). That
//! merge works **across processes** too, because the packed key and the
//! decoded group values depend only on the *dimension* tables (dictionary
//! sizes and dimension column stats), which sharded deployments replicate
//! on every shard: the same group packs to the same `u64` and decodes to
//! the same values everywhere, whatever fact rows a shard holds.
//!
//! A [`PartialAggregate`] is therefore the shard-side serialization of an
//! [`AggTable`](crate::inter::AggTable): one row per group in ascending
//! packed-key order — exactly
//! [`for_each_ordered`](crate::inter::AggTable::for_each_ordered) order —
//! carrying the raw `u64` merge key, the decoded group values (identical on
//! every shard, so the router never needs a database), and the `i64`
//! accumulator sums. The router merges rows by key, sums accumulators, and
//! applies the query's ORDER BY with
//! [`QueryResult::apply_order`] — byte-identical to a single-node run by
//! construction (see `qppt_par::merge_partial_aggregates`).

use qppt_storage::{OrderKey, QueryResult, ResultRow, Value};

use crate::exec::decode_groups;
use crate::inter::AggTable;
use crate::plan::Plan;
use qppt_storage::Database;

/// One group of a partial aggregate: the packed group key (the merge key),
/// its decoded group-by values, and the accumulator sums so far.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialRow {
    /// Packed composite group key — identical across shards for the same
    /// group (widths derive from replicated dimension tables).
    pub key: u64,
    /// Decoded group-by values, in `group_cols` order.
    pub group_values: Vec<Value>,
    /// Accumulator sums, in `agg_cols` order.
    pub accs: Vec<i64>,
}

/// An undecoded per-shard aggregation result: rows in ascending `key`
/// order, plus the output schema needed to render the merged result.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialAggregate {
    /// Group-by column labels, as in [`QueryResult::group_cols`].
    pub group_cols: Vec<String>,
    /// Aggregate labels, as in [`QueryResult::agg_cols`].
    pub agg_cols: Vec<String>,
    /// One row per group, ascending by `key`.
    pub rows: Vec<PartialRow>,
}

impl PartialAggregate {
    /// Serializes an aggregation index into partial-aggregate rows. Group
    /// values are decoded through the same dictionary path as
    /// [`decode_result`](crate::exec::decode_result) — including its
    /// lane-wise batched runs under `batch_exec`, which never change the
    /// emitted bytes; no ordering beyond the index's own ascending key
    /// iteration is applied.
    pub fn from_agg(db: &Database, plan: &Plan, agg: &AggTable) -> Self {
        let mut rows = Vec::with_capacity(agg.group_count());
        decode_groups(db, plan, agg, |key, group_values, accs| {
            rows.push(PartialRow {
                key,
                group_values,
                accs,
            });
        });
        Self {
            group_cols: plan
                .spec
                .group_by
                .iter()
                .map(|g| g.column.clone())
                .collect(),
            agg_cols: plan
                .spec
                .aggregates
                .iter()
                .map(|a| a.label.clone())
                .collect(),
            rows,
        }
    }

    /// Total groups held.
    pub fn group_count(&self) -> usize {
        self.rows.len()
    }

    /// Rough resident bytes of the undecoded rows (labels, group values,
    /// accumulators) — mirrors [`QueryResult::memory_bytes`] so the
    /// router's partial-aggregate cache tier can run the same byte
    /// budgeting as the engine-side tiers.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut b = size_of::<Self>();
        for s in self.group_cols.iter().chain(&self.agg_cols) {
            b += size_of::<String>() + s.len();
        }
        for row in &self.rows {
            b += size_of::<PartialRow>() + row.accs.len() * size_of::<i64>();
            for v in &row.group_values {
                b += size_of::<Value>()
                    + match v {
                        Value::Str(s) => s.len(),
                        Value::Int(_) => 0,
                    };
            }
        }
        b
    }

    /// Decodes into the shared result format: rows stay in ascending key
    /// order (the single-node decode order), then the query's ORDER BY is
    /// applied on top — the same stable sort a single node performs.
    pub fn into_result(self, order_by: &[OrderKey]) -> QueryResult {
        let mut result = QueryResult {
            group_cols: self.group_cols,
            agg_cols: self.agg_cols,
            rows: self
                .rows
                .into_iter()
                .map(|r| ResultRow {
                    key_values: r.group_values,
                    agg_values: r.accs,
                })
                .collect(),
        };
        result.apply_order(order_by);
        result
    }
}
