//! Columnar row batches for the vectorized execution paths.
//!
//! A [`RowBatch`] is a fixed-capacity column-major staging area for the
//! stage-1/stage-N inner loops of the pipeline: one `Vec<u64>` lane per
//! work-layout slot plus a key lane, and a selection vector of surviving
//! row ordinals. The batched scan paths *gather* a block of payload rows
//! into the lanes row-major — each (possibly random) source row is
//! touched exactly once, and only the columns the block's predicates
//! read are materialized — then run each compiled predicate
//! lane-at-a-time compacting the selection vector instead of branching
//! per row, and late-materialize the survivors (re-reading their source
//! row, by then cache-resident) when emitting into the join buffer.
//!
//! Batches never change result bytes — the batched paths visit the same
//! tuples in the same order as the scalar loops, so the `batch_exec` knob
//! is excluded from the cache fingerprints entirely (see
//! `fingerprint_opts`).

use qppt_storage::CompiledPred;

/// A fixed-capacity column-major block of rows: `width` value lanes plus a
/// key lane, and a selection vector of live row ordinals.
#[derive(Debug)]
pub struct RowBatch {
    width: usize,
    cap: usize,
    len: usize,
    keys: Vec<u64>,
    lanes: Vec<Vec<u64>>,
    sel: Vec<u32>,
}

impl RowBatch {
    /// A batch of `width` lanes holding up to `cap` rows (`cap >= 1`;
    /// `cap = 1` is the degenerate row-at-a-time batch).
    pub fn new(width: usize, cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            width,
            cap,
            len: 0,
            keys: Vec::with_capacity(cap),
            lanes: (0..width).map(|_| Vec::with_capacity(cap)).collect(),
            sel: Vec::with_capacity(cap),
        }
    }

    /// Lanes per row (the work-layout width; the key lane is extra).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Row capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Rows currently staged (filled, not necessarily selected).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no rows are staged.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when the batch holds `capacity()` rows.
    pub fn is_full(&self) -> bool {
        self.len >= self.cap
    }

    /// Clears every lane, the key lane, and the selection vector.
    pub fn reset(&mut self) {
        self.len = 0;
        self.keys.clear();
        self.sel.clear();
        for lane in &mut self.lanes {
            lane.clear();
        }
    }

    /// The key lane, for direct bulk fills during a gather.
    pub fn keys_mut(&mut self) -> &mut Vec<u64> {
        &mut self.keys
    }

    /// Value lane `i`, for direct bulk fills during a gather.
    pub fn lane_mut(&mut self, i: usize) -> &mut Vec<u64> {
        &mut self.lanes[i]
    }

    /// Pre-sizes the lanes in `cols` to `n` zeroed slots — and clears all
    /// the others — then hands the lanes back for a row-major gather: the
    /// caller walks each source row once and scatters the listed columns
    /// with indexed stores (the `resize` memset is a vectorized streaming
    /// store — cheaper than per-push length bookkeeping). Lanes outside
    /// `cols` stay empty: a late-materializing gather fills only the
    /// columns its predicates read, and survivors re-read their source
    /// row on emit. Call [`seal`](Self::seal) with the same `n` after.
    pub fn lanes_filled(&mut self, n: usize, cols: &[usize]) -> &mut [Vec<u64>] {
        for lane in &mut self.lanes {
            lane.clear();
        }
        for &c in cols {
            self.lanes[c].resize(n, 0);
        }
        &mut self.lanes
    }

    /// The key lane.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Value lane `i`.
    pub fn lane(&self, i: usize) -> &[u64] {
        &self.lanes[i]
    }

    /// The selection vector: ordinals of rows still live, ascending.
    pub fn sel(&self) -> &[u32] {
        &self.sel
    }

    /// Ends a gather: asserts every *gathered* lane was filled to `n`
    /// rows and resets the selection vector to all of them. The key lane
    /// and any value lane may instead be left empty (a sparse gather
    /// fills only the columns its predicates read); reading an ungathered
    /// lane or key is the caller's bug.
    pub fn seal(&mut self, n: usize) {
        debug_assert!(n <= self.cap, "sealed past capacity");
        debug_assert!(
            self.keys.is_empty() || self.keys.len() == n,
            "key lane length mismatch"
        );
        for (i, lane) in self.lanes.iter().enumerate() {
            debug_assert!(
                lane.is_empty() || lane.len() == n,
                "lane {i} length mismatch"
            );
            let _ = lane;
        }
        self.len = n;
        self.sel.clear();
        self.sel.extend(0..n as u32);
    }

    /// Compacts the selection vector with an arbitrary per-row predicate
    /// (`keep` receives the row ordinal). Lanes are untouched — filtering
    /// is selection-vector-only, the vectorized replacement for the scalar
    /// per-row branch.
    pub fn filter(&mut self, mut keep: impl FnMut(usize) -> bool) {
        self.sel.retain(|&r| keep(r as usize));
    }

    /// Compacts the selection vector with one compiled predicate evaluated
    /// lane-at-a-time: the predicate's column accessor reads this batch's
    /// lanes directly.
    pub fn filter_pred(&mut self, pred: &CompiledPred) {
        let lanes = &self.lanes;
        self.sel.retain(|&r| pred.matches(|c| lanes[c][r as usize]));
    }

    /// The key of row `r`.
    #[inline]
    pub fn key(&self, r: usize) -> u64 {
        self.keys[r]
    }

    /// Transposes row `r` back into row-major form (`out.len() >= width`;
    /// slots past `width` are left untouched).
    #[inline]
    pub fn read_row(&self, r: usize, out: &mut [u64]) {
        for (i, lane) in self.lanes.iter().enumerate() {
            out[i] = lane[r];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fills `n` rows where lane `i` of row `r` holds `r * 10 + i` and the
    /// key is `r`.
    fn filled(width: usize, cap: usize, n: usize) -> RowBatch {
        let mut b = RowBatch::new(width, cap);
        for r in 0..n {
            b.keys_mut().push(r as u64);
        }
        for i in 0..width {
            for r in 0..n {
                b.lane_mut(i).push((r * 10 + i) as u64);
            }
        }
        b.seal(n);
        b
    }

    #[test]
    fn lane_fill_and_seal_select_everything() {
        let b = filled(3, 8, 5);
        assert_eq!(b.width(), 3);
        assert_eq!(b.capacity(), 8);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty() && !b.is_full());
        assert_eq!(b.sel(), &[0, 1, 2, 3, 4]);
        assert_eq!(b.keys(), &[0, 1, 2, 3, 4]);
        assert_eq!(b.lane(1), &[1, 11, 21, 31, 41]);
        let mut row = vec![0u64; 3];
        b.read_row(3, &mut row);
        assert_eq!(row, vec![30, 31, 32]);
        assert_eq!(b.key(3), 3);
    }

    #[test]
    fn fill_to_capacity_boundary_and_reset() {
        let mut b = filled(2, 4, 4);
        assert!(b.is_full());
        assert_eq!(b.sel().len(), 4);
        b.reset();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.sel(), &[] as &[u32]);
        assert_eq!(b.keys(), &[] as &[u64]);
        assert_eq!(b.lane(0), &[] as &[u64]);
        // Refill after reset: lanes start clean.
        b.keys_mut().push(9);
        b.lane_mut(0).push(90);
        b.lane_mut(1).push(91);
        b.seal(1);
        assert_eq!(b.sel(), &[0]);
        assert_eq!(b.key(0), 9);
    }

    #[test]
    fn selection_vector_compaction_chains() {
        let mut b = filled(2, 8, 8);
        // Generic filter: keep even ordinals.
        b.filter(|r| r % 2 == 0);
        assert_eq!(b.sel(), &[0, 2, 4, 6]);
        // Lane-at-a-time compiled predicate: lane 0 holds r*10, keep
        // 20..=45 → rows 2 and 4 survive.
        b.filter_pred(&CompiledPred::Range {
            col: 0,
            lo: 20,
            hi: 45,
        });
        assert_eq!(b.sel(), &[2, 4]);
        // Never kills everything; lanes are untouched throughout.
        b.filter_pred(&CompiledPred::Never);
        assert_eq!(b.sel(), &[] as &[u32]);
        assert_eq!(b.len(), 8);
        assert_eq!(b.lane(0).len(), 8);
    }

    #[test]
    fn sparse_gather_fills_only_predicate_lanes() {
        let mut b = RowBatch::new(4, 8);
        // Only columns 1 and 3 are predicate lanes this block.
        let lanes = b.lanes_filled(6, &[1, 3]);
        for (r, slot) in lanes[1].iter_mut().enumerate() {
            *slot = (r * 10 + 1) as u64;
        }
        lanes[3].copy_from_slice(&[3, 13, 23, 33, 43, 53]);
        // Key lane and ungathered lanes stay empty; seal accepts that.
        b.seal(6);
        assert_eq!(b.len(), 6);
        assert_eq!(b.sel(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(b.keys(), &[] as &[u64]);
        assert_eq!(b.lane(0), &[] as &[u64]);
        assert_eq!(b.lane(2), &[] as &[u64]);
        assert_eq!(b.lane(3), &[3, 13, 23, 33, 43, 53]);
        // Predicates over the gathered lanes still filter normally.
        b.filter_pred(&CompiledPred::Range {
            col: 1,
            lo: 11,
            hi: 41,
        });
        assert_eq!(b.sel(), &[1, 2, 3, 4]);
        // A sparse block can be re-gathered densely afterwards.
        let lanes = b.lanes_filled(2, &[0, 1, 2, 3]);
        for lane in lanes.iter_mut() {
            lane[0] = 7;
            lane[1] = 8;
        }
        b.keys_mut().extend_from_slice(&[70, 80]);
        b.seal(2);
        assert_eq!(b.key(1), 80);
        let mut row = vec![0u64; 4];
        b.read_row(0, &mut row);
        assert_eq!(row, vec![7, 7, 7, 7]);
    }

    #[test]
    fn capacity_one_degenerate_batch() {
        let mut b = RowBatch::new(1, 1);
        assert_eq!(b.capacity(), 1);
        for round in 0..3u64 {
            b.reset();
            b.keys_mut().push(round);
            b.lane_mut(0).push(round * 7);
            b.seal(1);
            assert!(b.is_full());
            assert_eq!(b.sel(), &[0]);
            b.filter(|_| round % 2 == 0);
            assert_eq!(b.sel().is_empty(), round % 2 == 1);
        }
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let b = RowBatch::new(2, 0);
        assert_eq!(b.capacity(), 1);
    }
}
