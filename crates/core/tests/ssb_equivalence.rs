//! End-to-end correctness: the QPPT engine must produce exactly the same
//! results as the reference oracle for every SSB query, under every plan
//! option combination — composed operators are pure optimizations.

use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_ssb::{queries, run_reference, SsbDb};
use qppt_storage::QueryResult;

fn prepared_db(sf: f64, seed: u64, opts: &PlanOptions) -> SsbDb {
    let mut ssb = SsbDb::generate(sf, seed);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, opts).unwrap();
    }
    ssb
}

fn assert_same(a: &QueryResult, b: &QueryResult, ctx: &str) {
    let ca = a.clone().canonicalized();
    let cb = b.clone().canonicalized();
    assert_eq!(ca.rows.len(), cb.rows.len(), "{ctx}: row counts differ");
    assert_eq!(ca, cb, "{ctx}: results differ");
}

#[test]
fn all_queries_match_reference_default_options() {
    let opts = PlanOptions::default();
    let ssb = prepared_db(0.05, 42, &opts);
    let snap = ssb.db.snapshot();
    let engine = QpptEngine::new(&ssb.db);
    // City- and nation-level Q3/Q4 drill-downs can be legitimately empty at
    // tiny scale factors (only `SF × 2000` suppliers exist); equality with
    // the oracle is asserted for all, non-emptiness where scale permits.
    let must_be_nonempty = [
        "Q1.1", "Q1.2", "Q1.3", "Q2.1", "Q2.2", "Q2.3", "Q3.1", "Q4.1", "Q4.2",
    ];
    for q in queries::all_queries() {
        let expect = run_reference(&ssb.db, &q, snap).unwrap();
        let got = engine.run(&q, &opts).unwrap();
        assert_same(&got, &expect, &q.id);
        if must_be_nonempty.contains(&q.id.as_str()) {
            assert!(!got.rows.is_empty(), "{}: query selects something", q.id);
        }
    }
}

#[test]
fn city_in_lists_match_reference_with_rows() {
    // A Q3.3 variant over all ten cities of two nations, so the InSet × InSet
    // path is exercised with a non-empty result even at small scale.
    let mut q = queries::q3_3();
    let uk_cities: Vec<qppt_storage::Value> = (0..10)
        .map(|d| qppt_storage::Value::Str(format!("UNITED KI{d}")))
        .collect();
    let us_cities: Vec<qppt_storage::Value> = (0..10)
        .map(|d| qppt_storage::Value::Str(format!("UNITED ST{d}")))
        .collect();
    q.dims[0].predicates = vec![qppt_storage::Predicate::is_in(
        "c_city",
        [uk_cities.clone(), us_cities.clone()].concat(),
    )];
    q.dims[1].predicates = vec![qppt_storage::Predicate::is_in(
        "s_city",
        [uk_cities, us_cities].concat(),
    )];
    q.id = "Q3.3-wide".into();

    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(0.05, 42);
    prepare_indexes(&mut ssb.db, &q, &opts).unwrap();
    let snap = ssb.db.snapshot();
    let engine = QpptEngine::new(&ssb.db);
    let expect = run_reference(&ssb.db, &q, snap).unwrap();
    let got = engine.run(&q, &opts).unwrap();
    assert_same(&got, &expect, "Q3.3-wide");
    assert!(
        !got.rows.is_empty(),
        "wide city lists select rows at SF 0.05"
    );
}

#[test]
fn select_join_on_off_agree() {
    let on = PlanOptions::default().with_select_join(true);
    let off = PlanOptions::default().with_select_join(false);
    let mut ssb = SsbDb::generate(0.01, 7);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &on).unwrap();
        prepare_indexes(&mut ssb.db, &q, &off).unwrap();
    }
    let engine = QpptEngine::new(&ssb.db);
    for q in queries::all_queries() {
        let a = engine.run(&q, &on).unwrap();
        let b = engine.run(&q, &off).unwrap();
        assert_same(&a, &b, &format!("{} select-join on/off", q.id));
    }
}

#[test]
fn all_join_buffer_sizes_agree() {
    let base = PlanOptions::default();
    let ssb = prepared_db(0.01, 11, &base);
    let engine = QpptEngine::new(&ssb.db);
    for q in [queries::q2_3(), queries::q4_1(), queries::q1_1()] {
        let reference = engine.run(&q, &base.with_join_buffer(1)).unwrap();
        for buf in PlanOptions::JOIN_BUFFER_CHOICES {
            let got = engine.run(&q, &base.with_join_buffer(buf)).unwrap();
            assert_same(&got, &reference, &format!("{} join_buffer={buf}", q.id));
        }
    }
}

#[test]
fn all_join_way_limits_agree() {
    let base = PlanOptions::default();
    let ssb = prepared_db(0.01, 13, &base);
    let snap = ssb.db.snapshot();
    let engine = QpptEngine::new(&ssb.db);
    for q in [
        queries::q4_1(),
        queries::q4_2(),
        queries::q3_1(),
        queries::q2_3(),
    ] {
        let expect = run_reference(&ssb.db, &q, snap).unwrap();
        for ways in 2..=5 {
            let got = engine.run(&q, &base.with_max_join_ways(ways)).unwrap();
            assert_same(&got, &expect, &format!("{} max_ways={ways}", q.id));
        }
    }
}

#[test]
fn prefix_tree_only_agrees_with_kiss() {
    let kiss = PlanOptions::default();
    let pt = PlanOptions::default().with_prefer_kiss(false);
    let mut ssb = SsbDb::generate(0.01, 17);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &kiss).unwrap();
    }
    // Rebuild indexes as prefix trees in a second database.
    let mut ssb_pt = SsbDb::generate(0.01, 17);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb_pt.db, &q, &pt).unwrap();
    }
    let ek = QpptEngine::new(&ssb.db);
    let ep = QpptEngine::new(&ssb_pt.db);
    for q in queries::all_queries() {
        let a = ek.run(&q, &kiss).unwrap();
        let b = ep.run(&q, &pt).unwrap();
        assert_same(&a, &b, &format!("{} kiss vs pt", q.id));
    }
}

#[test]
fn set_op_selections_agree() {
    // Q1.3 (two date predicates) and Q3.x exercise the intersect path.
    let plain = PlanOptions::default();
    let setops = PlanOptions::default().with_set_ops(true);
    let mut ssb = SsbDb::generate(0.01, 19);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &plain).unwrap();
        prepare_indexes(&mut ssb.db, &q, &setops).unwrap();
    }
    let engine = QpptEngine::new(&ssb.db);
    for q in queries::all_queries() {
        let a = engine.run(&q, &plain).unwrap();
        let b = engine.run(&q, &setops).unwrap();
        assert_same(&a, &b, &format!("{} set-ops", q.id));
    }
}

#[test]
fn multidim_selections_agree() {
    // Q1.3 (d_weeknuminyear = 6 AND d_year = 1994) collapses into a point
    // lookup on a (weeknum, year) composite index; Q3.x date predicates are
    // single-column and stay on the normal path — results must be identical
    // either way.
    let plain = PlanOptions::default();
    let multidim = PlanOptions::default().with_multidim(true);
    let mut ssb = SsbDb::generate(0.01, 29);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &plain).unwrap();
        prepare_indexes(&mut ssb.db, &q, &multidim).unwrap();
    }
    let engine = QpptEngine::new(&ssb.db);
    for q in queries::all_queries() {
        let a = engine.run(&q, &plain).unwrap();
        let b = engine.run(&q, &multidim).unwrap();
        assert_same(&a, &b, &format!("{} multidim", q.id));
    }
    // The Q1.3 plan really uses the multidimensional index.
    let explain = engine.explain(&queries::q1_3(), &multidim).unwrap();
    assert!(
        explain.contains("multidim") || multidim.select_join,
        "{explain}"
    );
    let explain_plain = engine
        .explain(&queries::q1_3(), &multidim.with_select_join(false))
        .unwrap();
    assert!(
        explain_plain.contains("via multidim index"),
        "{explain_plain}"
    );
}

#[test]
fn multidim_with_trailing_range_predicate() {
    // Custom query: d_year = 1993 AND d_weeknuminyear BETWEEN 4 AND 9 —
    // leading equality, trailing range, the other eligible shape.
    let mut q = queries::q1_1();
    q.id = "Q1.1-week-range".into();
    q.dims[0].predicates = vec![
        qppt_storage::Predicate::eq("d_year", 1993i64),
        qppt_storage::Predicate::between("d_weeknuminyear", 4i64, 9i64),
    ];
    let plain = PlanOptions::default();
    let multidim = PlanOptions::default().with_multidim(true);
    let mut ssb = SsbDb::generate(0.01, 30);
    prepare_indexes(&mut ssb.db, &q, &plain).unwrap();
    prepare_indexes(&mut ssb.db, &q, &multidim).unwrap();
    let snap = ssb.db.snapshot();
    let engine = QpptEngine::new(&ssb.db);
    let oracle = run_reference(&ssb.db, &q, snap).unwrap();
    assert_same(&engine.run(&q, &plain).unwrap(), &oracle, "plain");
    assert_same(&engine.run(&q, &multidim).unwrap(), &oracle, "multidim");
    assert!(!oracle.rows.is_empty());
}

#[test]
fn results_are_ordered_as_specified() {
    let opts = PlanOptions::default();
    let ssb = prepared_db(0.02, 23, &opts);
    let engine = QpptEngine::new(&ssb.db);
    // Q2.1: order by d_year, p_brand1 — group-key order.
    let r = engine.run(&queries::q2_1(), &opts).unwrap();
    assert!(!r.rows.is_empty());
    for w in r.rows.windows(2) {
        assert!(w[0].key_values <= w[1].key_values);
    }
    // Q3.1: order by d_year asc, revenue desc.
    let r = engine.run(&queries::q3_1(), &opts).unwrap();
    for w in r.rows.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let (ya, yb) = (a.key_values[2].as_int(), b.key_values[2].as_int());
        assert!(ya < yb || (ya == yb && a.agg_values[0] >= b.agg_values[0]));
    }
}

#[test]
fn mvcc_snapshot_isolation_through_the_engine() {
    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(0.01, 31);
    let q = queries::q1_1();
    prepare_indexes(&mut ssb.db, &q, &opts).unwrap();

    let before = ssb.db.snapshot();
    let engine = QpptEngine::new(&ssb.db);
    let (r_before, _) = engine.run_at(&q, &opts, before).unwrap();

    // Insert a row that matches Q1.1 (1993 orderdate, discount 2, qty 10).
    let ship = {
        let lo = ssb.db.table("lineorder").unwrap().table();
        lo.value(0, lo.schema().col("lo_shipmode").unwrap())
    };
    ssb.db
        .insert_row(
            "lineorder",
            &[
                qppt_storage::Value::Int(888_888),
                qppt_storage::Value::Int(1),
                qppt_storage::Value::Int(1),
                qppt_storage::Value::Int(1),
                qppt_storage::Value::Int(1),
                qppt_storage::Value::Int(19930615),
                qppt_storage::Value::Int(10),
                qppt_storage::Value::Int(5000),
                qppt_storage::Value::Int(5000),
                qppt_storage::Value::Int(2),
                qppt_storage::Value::Int(4900),
                qppt_storage::Value::Int(300),
                qppt_storage::Value::Int(0),
                ship,
            ],
        )
        .unwrap();
    let after = ssb.db.snapshot();

    let engine = QpptEngine::new(&ssb.db);
    let (r_old, _) = engine.run_at(&q, &opts, before).unwrap();
    let (r_new, _) = engine.run_at(&q, &opts, after).unwrap();
    assert_eq!(r_old, r_before, "old snapshot unchanged after insert");
    assert_eq!(
        r_new.rows[0].agg_values[0],
        r_before.rows[0].agg_values[0] + 5000 * 2,
        "new snapshot sees the inserted tuple"
    );
    // And the reference oracle agrees at both snapshots.
    let ref_new = run_reference(&ssb.db, &q, after).unwrap();
    assert_eq!(r_new.rows[0].agg_values, ref_new.rows[0].agg_values);
}

#[test]
fn explain_renders_plan_shapes() {
    let opts = PlanOptions::default();
    let ssb = prepared_db(0.01, 3, &opts);
    let engine = QpptEngine::new(&ssb.db);
    let fused = engine.explain(&queries::q2_3(), &opts).unwrap();
    assert!(fused.contains("select-join"), "{fused}");
    assert!(fused.contains("star join"), "{fused}");
    let plain = engine
        .explain(&queries::q2_3(), &opts.with_select_join(false))
        .unwrap();
    assert!(plain.contains("σ("), "{plain}");
    let two_way = engine
        .explain(&queries::q4_1(), &opts.with_max_join_ways(2))
        .unwrap();
    assert!(two_way.matches("stage").count() >= 4, "{two_way}");
}
