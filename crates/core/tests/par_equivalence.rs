//! Parallel/sequential equivalence: `run_parallel` must produce
//! **byte-identical** `QueryResult`s to the sequential `run` — same rows,
//! same row order, same aggregate values — for every SSB query, across
//! worker counts and morsel granularities. Morsel partitioning, private
//! per-worker aggregation, and the deterministic merge are pure execution
//! strategies; any visible difference is a bug.

use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_par::{ParEngine, RunParallel};
use qppt_ssb::{queries, SsbDb};

fn prepared_db(sf: f64, seed: u64, opts: &PlanOptions) -> SsbDb {
    let mut ssb = SsbDb::generate(sf, seed);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, opts).unwrap();
    }
    ssb
}

#[test]
fn all_queries_identical_across_parallelism() {
    let base = PlanOptions::default();
    let ssb = prepared_db(0.05, 42, &base);
    let engine = QpptEngine::new(&ssb.db);
    for q in queries::all_queries() {
        let sequential = engine.run(&q, &base).unwrap();
        for workers in [1usize, 2, 8] {
            let opts = base.with_parallelism(workers);
            let parallel = engine.run_parallel(&q, &opts).unwrap();
            // Byte-identical: rows in the same order with the same values,
            // not merely set-equal.
            assert_eq!(
                parallel.rows.len(),
                sequential.rows.len(),
                "{} @ {workers} workers: row count",
                q.id
            );
            assert_eq!(
                parallel, sequential,
                "{} @ {workers} workers: result rows",
                q.id
            );
        }
    }
}

#[test]
fn morsel_granularities_identical() {
    // Coarse (2 morsels) through fine (4096 morsels) partitionings must not
    // change anything either.
    let base = PlanOptions::default();
    let ssb = prepared_db(0.02, 7, &base);
    let engine = QpptEngine::new(&ssb.db);
    for q in [queries::q1_1(), queries::q2_3(), queries::q4_1()] {
        let sequential = engine.run(&q, &base).unwrap();
        for bits in [1u8, 3, 6, 12] {
            let opts = base.with_parallelism(4).with_morsel_bits(bits);
            let parallel = engine.run_parallel(&q, &opts).unwrap();
            assert_eq!(parallel, sequential, "{} @ morsel_bits={bits}", q.id);
        }
    }
}

#[test]
fn operator_class_switches_identical() {
    // Disabling any operator class degrades that class to sequential
    // execution — never changes results.
    let base = PlanOptions::default();
    let ssb = prepared_db(0.02, 11, &base);
    let engine = QpptEngine::new(&ssb.db);
    for q in [queries::q1_2(), queries::q2_3(), queries::q3_1()] {
        let sequential = engine.run(&q, &base).unwrap();
        for (sel, scan, join) in [
            (false, true, true),
            (true, false, true),
            (true, true, false),
            (false, false, false),
        ] {
            let opts = base.with_parallelism(8).with_par_ops(sel, scan, join);
            let parallel = engine.run_parallel(&q, &opts).unwrap();
            assert_eq!(
                parallel, sequential,
                "{} @ par_ops=({sel},{scan},{join})",
                q.id
            );
        }
    }
}

#[test]
fn non_default_plan_shapes_identical() {
    // Parallel execution composes with the paper's plan knobs: non-fused
    // plans (select_join off → materialized fact selection), prefix-tree-only
    // indexes, narrow join stages.
    let variants = [
        PlanOptions::default().with_select_join(false),
        PlanOptions::default().with_prefer_kiss(false),
        PlanOptions::default().with_max_join_ways(2),
        PlanOptions::default().with_join_buffer(1),
    ];
    for (vi, base) in variants.into_iter().enumerate() {
        let ssb = prepared_db(0.02, 23, &base);
        let engine = QpptEngine::new(&ssb.db);
        for q in [queries::q1_1(), queries::q2_3(), queries::q4_2()] {
            let sequential = engine.run(&q, &base).unwrap();
            let parallel = engine.run_parallel(&q, &base.with_parallelism(8)).unwrap();
            assert_eq!(parallel, sequential, "{} @ variant {vi}", q.id);
        }
    }
}

#[test]
fn par_engine_stats_cover_all_operators() {
    let base = PlanOptions::default();
    let ssb = prepared_db(0.02, 3, &base);
    let spec = queries::q2_3();
    let (seq_result, seq_stats) = QpptEngine::new(&ssb.db)
        .run_with_stats(&spec, &base)
        .unwrap();
    let (par_result, par_stats) = ParEngine::new(&ssb.db)
        .run_with_stats(&spec, &base.with_parallelism(4))
        .unwrap();
    assert_eq!(par_result, seq_result);
    // Same operator sequence (σ per materialized dim, then the stages) and
    // the same operator labels, partition-merged.
    assert_eq!(par_stats.ops.len(), seq_stats.ops.len());
    for (p, s) in par_stats.ops.iter().zip(seq_stats.ops.iter()) {
        assert_eq!(p.label, s.label);
    }
    // The final join-group record reports the merged index: identical group
    // counts to the sequential run.
    let (p_last, s_last) = (par_stats.ops.last().unwrap(), seq_stats.ops.last().unwrap());
    assert_eq!(p_last.out_keys, s_last.out_keys);
    assert_eq!(seq_result.rows.len(), p_last.out_keys);
}
