//! Batched/scalar equivalence: `batch_exec=on` is a pure execution
//! strategy — columnar gathers, selection-vector predicate filtering, and
//! run-length-grouped aggregate merges must produce **byte-identical**
//! `QueryResult`s to the scalar path for every SSB query, across
//! parallelism, morsel granularity, and batch block size. Any visible
//! difference is a bug.

use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_par::RunParallel;
use qppt_ssb::{queries, SsbDb};

fn prepared_db(sf: f64, seed: u64, opts: &PlanOptions) -> SsbDb {
    let mut ssb = SsbDb::generate(sf, seed);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, opts).unwrap();
    }
    ssb
}

#[test]
fn all_queries_identical_scalar_vs_batched_across_the_grid() {
    let base = PlanOptions::default();
    let ssb = prepared_db(0.01, 42, &base);
    let engine = QpptEngine::new(&ssb.db);
    for q in queries::all_queries() {
        let scalar = engine.run(&q, &base).unwrap();
        // The sequential engine path (execute_agg) with batching on.
        for rows in [1usize, 64, 1024] {
            let opts = base.with_batch_exec(true).with_batch_rows(rows);
            let batched = engine.run(&q, &opts).unwrap();
            assert_eq!(batched, scalar, "{} sequential @ batch_rows={rows}", q.id);
        }
        // The full grid through the morsel scheduler: batch_rows=1 is the
        // degenerate one-row block, 1024 spans whole morsels at fine
        // granularities.
        for workers in [1usize, 4] {
            for bits in [1u8, 6, 12] {
                for rows in [1usize, 64, 1024] {
                    let opts = base
                        .with_parallelism(workers)
                        .with_morsel_bits(bits)
                        .with_batch_exec(true)
                        .with_batch_rows(rows);
                    let batched = engine.run_parallel(&q, &opts).unwrap();
                    assert_eq!(
                        batched, scalar,
                        "{} @ parallelism={workers} morsel_bits={bits} batch_rows={rows}",
                        q.id
                    );
                }
            }
        }
    }
}

#[test]
fn batched_op_stats_report_identical_cardinalities() {
    // Batching must not change what the operators *saw*: per-operator
    // out_keys/out_tuples (and the operator sequence itself) are pinned to
    // the scalar run. Only micros/memory may differ.
    let base = PlanOptions::default();
    let ssb = prepared_db(0.01, 7, &base);
    let engine = QpptEngine::new(&ssb.db);
    for q in [queries::q1_1(), queries::q2_3(), queries::q4_1()] {
        let (scalar_result, scalar_stats) = engine.run_with_stats(&q, &base).unwrap();
        let opts = base.with_batch_exec(true).with_batch_rows(64);
        let (batched_result, batched_stats) = engine.run_with_stats(&q, &opts).unwrap();
        assert_eq!(batched_result, scalar_result, "{} result bytes", q.id);
        assert_eq!(
            batched_stats.ops.len(),
            scalar_stats.ops.len(),
            "{} operator count",
            q.id
        );
        for (b, s) in batched_stats.ops.iter().zip(scalar_stats.ops.iter()) {
            assert_eq!(b.label, s.label, "{} operator sequence", q.id);
            assert_eq!(b.out_keys, s.out_keys, "{} {}: out_keys", q.id, s.label);
            assert_eq!(
                b.out_tuples, s.out_tuples,
                "{} {}: out_tuples",
                q.id, s.label
            );
        }
    }
}
