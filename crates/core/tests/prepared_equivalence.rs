//! `PreparedQuery` contract: executing from prepared state — cached plan,
//! cached dimension selections, replayed fused stream — is byte-identical
//! to planning + materializing from scratch, for every SSB query, and
//! repeated executions from one `PreparedQuery` keep returning the same
//! bytes.

use qppt_core::{prepare_indexes, PlanOptions, PreparedQuery, QpptEngine};
use qppt_ssb::{queries, SsbDb};

#[test]
fn prepared_execution_matches_fresh_execution_all_queries() {
    let mut ssb = SsbDb::generate(0.01, 42);
    let variants = [
        PlanOptions::default(),
        PlanOptions::default().with_select_join(false),
        PlanOptions::default().with_join_buffer(1),
    ];
    for opts in &variants {
        for q in queries::all_queries() {
            prepare_indexes(&mut ssb.db, &q, opts).unwrap();
        }
    }
    let engine = QpptEngine::new(&ssb.db);
    let snap = ssb.db.snapshot();
    for opts in &variants {
        for q in queries::all_queries() {
            let fresh = engine.run(&q, opts).unwrap();
            let prepared = PreparedQuery::build(&ssb.db, &q, opts, snap).unwrap();
            let (first, stats) = prepared.execute_sequential(&ssb.db).unwrap();
            let (second, _) = prepared.execute_sequential(&ssb.db).unwrap();
            assert_eq!(first, fresh, "{} diverged from fresh run ({opts:?})", q.id);
            assert_eq!(second, fresh, "{} not repeatable ({opts:?})", q.id);
            assert!(
                !stats.ops.is_empty(),
                "{} prepared run reported no operators",
                q.id
            );
        }
    }
}

#[test]
fn prepared_snapshot_pins_visibility() {
    // A prepared query executed after writes must keep returning the
    // *prepared* snapshot's bytes (the cache invalidates via table
    // versions; the prepared state itself stays snapshot-consistent).
    let mut ssb = SsbDb::generate(0.01, 42);
    let q = queries::q2_3();
    let opts = PlanOptions::default();
    prepare_indexes(&mut ssb.db, &q, &opts).unwrap();
    let snap = ssb.db.snapshot();
    let before = QpptEngine::new(&ssb.db).run(&q, &opts).unwrap();
    let prepared = PreparedQuery::build(&ssb.db, &q, &opts, snap).unwrap();

    // Terminate a fact row version after preparation.
    ssb.db.delete_row("lineorder", 0).unwrap();

    let (got, _) = prepared.execute_sequential(&ssb.db).unwrap();
    assert_eq!(got, before, "prepared execution drifted off its snapshot");
}
