//! The synchronous index scan (§4.2) and the set operators built on it.
//!
//! Two prefix trees with the same geometry are scanned *synchronously*: both
//! root nodes are walked left to right, and the scan only descends into a
//! bucket when it is populated **in both** indexes. Whole subtrees present
//! on only one side are skipped without being touched — this is what makes
//! joining two indexed tables cheap on unbalanced trees, and the paper uses
//! the very same kernel for joins and set operators.

use crate::tree::{decode, PrefixTree, Slot, Values};

/// Runs a synchronous index scan over two trees, invoking `f` for every key
/// present in **both**, in ascending key order.
///
/// Both trees must share the same [`TrieConfig`](crate::TrieConfig)
/// geometry; this is enforced with a panic because the planner guarantees it
/// (cooperative operators always build the output index in the geometry the
/// consumer asks for).
pub fn sync_scan<'l, 'r, VL, VR>(
    left: &'l PrefixTree<VL>,
    right: &'r PrefixTree<VR>,
    mut f: impl FnMut(u64, Values<'l, VL>, Values<'r, VR>),
) where
    VL: Copy + Default,
    VR: Copy + Default,
{
    assert_eq!(
        left.config(),
        right.config(),
        "synchronous scan requires identical tree geometry"
    );
    if left.is_empty() || right.is_empty() {
        return;
    }
    sync_rec(left, right, 0, 0, 0, &mut f);
}

fn sync_rec<'l, 'r, VL, VR>(
    left: &'l PrefixTree<VL>,
    right: &'r PrefixTree<VR>,
    lnode: u32,
    rnode: u32,
    level: u32,
    f: &mut impl FnMut(u64, Values<'l, VL>, Values<'r, VR>),
) where
    VL: Copy + Default,
    VR: Copy + Default,
{
    let fanout = left.config().fanout();
    for b in 0..fanout {
        let ls = decode(left.slots[left.slot_index(lnode, b)]);
        let rs = decode(right.slots[right.slot_index(rnode, b)]);
        match (ls, rs) {
            (Slot::Empty, _) | (_, Slot::Empty) => {}
            (Slot::Node(ln), Slot::Node(rn)) => {
                sync_rec(left, right, ln, rn, level + 1, f);
            }
            (Slot::Node(ln), Slot::Content(rc)) => {
                // The scan suspends on the right content and resumes as a
                // point descent into the left subtree.
                let key = right.key_of(rc);
                if let Some(lc) = left.find_content_from(ln, level + 1, key) {
                    f(key, left.values_of(lc), right.values_of(rc));
                }
            }
            (Slot::Content(lc), Slot::Node(rn)) => {
                let key = left.key_of(lc);
                if let Some(rc) = right.find_content_from(rn, level + 1, key) {
                    f(key, left.values_of(lc), right.values_of(rc));
                }
            }
            (Slot::Content(lc), Slot::Content(rc)) => {
                let key = left.key_of(lc);
                if key == right.key_of(rc) {
                    f(key, left.values_of(lc), right.values_of(rc));
                }
            }
        }
    }
}

/// Range-restricted synchronous index scan: like [`sync_scan`], but visits
/// only keys in `[lo, hi]`.
///
/// This is the **partitioned cursor** of the parallel executor: a morsel is
/// a top-level prefix range of the key domain, and each worker co-walks only
/// the subtrees whose key interval intersects its morsel. Subtrees entirely
/// outside `[lo, hi]` are pruned exactly like [`RangeIter`](crate::RangeIter)
/// prunes them, so the per-partition work is proportional to the partition's
/// population, not the whole tree.
pub fn sync_scan_range<'l, 'r, VL, VR>(
    left: &'l PrefixTree<VL>,
    right: &'r PrefixTree<VR>,
    lo: u64,
    hi: u64,
    mut f: impl FnMut(u64, Values<'l, VL>, Values<'r, VR>),
) where
    VL: Copy + Default,
    VR: Copy + Default,
{
    assert_eq!(
        left.config(),
        right.config(),
        "synchronous scan requires identical tree geometry"
    );
    if left.is_empty() || right.is_empty() || lo > hi {
        return;
    }
    sync_rec_range(left, right, 0, 0, 0, 0, lo, hi, &mut f);
}

#[allow(clippy::too_many_arguments)]
fn sync_rec_range<'l, 'r, VL, VR>(
    left: &'l PrefixTree<VL>,
    right: &'r PrefixTree<VR>,
    lnode: u32,
    rnode: u32,
    level: u32,
    prefix: u64,
    lo: u64,
    hi: u64,
    f: &mut impl FnMut(u64, Values<'l, VL>, Values<'r, VR>),
) where
    VL: Copy + Default,
    VR: Copy + Default,
{
    let cfg = left.config();
    let fanout = cfg.fanout();
    let kprime = cfg.kprime() as u32;
    let key_bits = cfg.key_bits() as u32;
    for b in 0..fanout {
        // Key interval covered by bucket `b` of this node:
        // [base, base + 2^rem - 1] where `rem` bits remain below.
        let rem = key_bits - (level + 1) * kprime;
        let base = ((prefix << kprime) | b as u64) << rem;
        let span_max = base | if rem == 0 { 0 } else { (1u64 << rem) - 1 };
        if span_max < lo || base > hi {
            continue;
        }
        let ls = decode(left.slots[left.slot_index(lnode, b)]);
        let rs = decode(right.slots[right.slot_index(rnode, b)]);
        match (ls, rs) {
            (Slot::Empty, _) | (_, Slot::Empty) => {}
            (Slot::Node(ln), Slot::Node(rn)) => {
                sync_rec_range(
                    left,
                    right,
                    ln,
                    rn,
                    level + 1,
                    (prefix << kprime) | b as u64,
                    lo,
                    hi,
                    f,
                );
            }
            (Slot::Node(ln), Slot::Content(rc)) => {
                let key = right.key_of(rc);
                if key >= lo && key <= hi {
                    if let Some(lc) = left.find_content_from(ln, level + 1, key) {
                        f(key, left.values_of(lc), right.values_of(rc));
                    }
                }
            }
            (Slot::Content(lc), Slot::Node(rn)) => {
                let key = left.key_of(lc);
                if key >= lo && key <= hi {
                    if let Some(rc) = right.find_content_from(rn, level + 1, key) {
                        f(key, left.values_of(lc), right.values_of(rc));
                    }
                }
            }
            (Slot::Content(lc), Slot::Content(rc)) => {
                let key = left.key_of(lc);
                if key == right.key_of(rc) && key >= lo && key <= hi {
                    f(key, left.values_of(lc), right.values_of(rc));
                }
            }
        }
    }
}

/// Scans the *union* of two trees' keys in ascending order, invoking `f`
/// with the values present on each side.
///
/// A union must visit every key of both inputs, so — unlike the
/// intersecting scan — there are no subtrees to skip; the structural co-walk
/// degenerates to a merge of the two ordered iterations, which is how it is
/// implemented.
pub fn sync_union_scan<'l, 'r, VL, VR>(
    left: &'l PrefixTree<VL>,
    right: &'r PrefixTree<VR>,
    mut f: impl FnMut(u64, Option<Values<'l, VL>>, Option<Values<'r, VR>>),
) where
    VL: Copy + Default,
    VR: Copy + Default,
{
    assert_eq!(
        left.config(),
        right.config(),
        "synchronous scan requires identical tree geometry"
    );
    let mut li = left.iter().peekable();
    let mut ri = right.iter().peekable();
    loop {
        let order = match (li.peek(), ri.peek()) {
            (None, None) => break,
            (Some(_), None) => core::cmp::Ordering::Less,
            (None, Some(_)) => core::cmp::Ordering::Greater,
            (Some((lk, _)), Some((rk, _))) => lk.cmp(rk),
        };
        match order {
            core::cmp::Ordering::Less => {
                let (k, lv) = li.next().expect("peeked");
                f(k, Some(lv), None);
            }
            core::cmp::Ordering::Greater => {
                let (k, rv) = ri.next().expect("peeked");
                f(k, None, Some(rv));
            }
            core::cmp::Ordering::Equal => {
                let (k, lv) = li.next().expect("peeked");
                let (_, rv) = ri.next().expect("peeked");
                f(k, Some(lv), Some(rv));
            }
        }
    }
}

/// Set intersection (§4.1): the QPPT `intersect` operator for conjunctive
/// selections over record-identifier indexes. Keys present in both inputs
/// are inserted into a fresh tree; values are taken from the left input
/// (both sides carry the same rid payloads in the intended use).
pub fn intersect<V: Copy + Default>(left: &PrefixTree<V>, right: &PrefixTree<V>) -> PrefixTree<V> {
    let mut out = PrefixTree::new(left.config());
    sync_scan(left, right, |key, lvals, _| {
        for v in lvals {
            out.insert(key, *v);
        }
    });
    out
}

/// Distinct set union (§4.1): the QPPT `union` operator for disjunctive
/// selections. Every key of either input appears once; values come from the
/// left input when present there, otherwise from the right.
pub fn union_distinct<V: Copy + Default>(
    left: &PrefixTree<V>,
    right: &PrefixTree<V>,
) -> PrefixTree<V> {
    let mut out = PrefixTree::new(left.config());
    sync_union_scan(left, right, |key, lvals, rvals| {
        let vals = lvals.or(rvals).expect("union key exists on some side");
        for v in vals {
            out.insert(key, *v);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_mem::Xoshiro256StarStar;
    use std::collections::BTreeSet;

    fn tree_of(keys: &[u64]) -> PrefixTree<u32> {
        let mut t = PrefixTree::pt4_32();
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u32);
        }
        t
    }

    #[test]
    fn sync_scan_finds_exact_intersection() {
        let mut rng = Xoshiro256StarStar::new(5);
        let a: Vec<u64> = (0..3000).map(|_| rng.below(1 << 18)).collect();
        let b: Vec<u64> = (0..3000).map(|_| rng.below(1 << 18)).collect();
        let ta = tree_of(&a);
        let tb = tree_of(&b);
        let sa: BTreeSet<u64> = a.iter().copied().collect();
        let sb: BTreeSet<u64> = b.iter().copied().collect();
        let expect: Vec<u64> = sa.intersection(&sb).copied().collect();
        let mut got = Vec::new();
        sync_scan(&ta, &tb, |k, _, _| got.push(k));
        assert_eq!(got, expect);
    }

    #[test]
    fn sync_scan_range_matches_filtered_full_scan() {
        let mut rng = Xoshiro256StarStar::new(11);
        let a: Vec<u64> = (0..4000).map(|_| rng.below(1 << 20)).collect();
        let b: Vec<u64> = (0..4000).map(|_| rng.below(1 << 20)).collect();
        let ta = tree_of(&a);
        let tb = tree_of(&b);
        let mut full = Vec::new();
        sync_scan(&ta, &tb, |k, _, _| full.push(k));
        for (lo, hi) in [
            (0u64, u32::MAX as u64),
            (0, (1 << 19) - 1),
            (1 << 19, (1 << 20) - 1),
            (12_345, 678_901),
            (7, 7),
            (1 << 21, 1 << 22), // beyond the populated domain
        ] {
            let expect: Vec<u64> = full
                .iter()
                .copied()
                .filter(|&k| k >= lo && k <= hi)
                .collect();
            let mut got = Vec::new();
            sync_scan_range(&ta, &tb, lo, hi, |k, _, _| got.push(k));
            assert_eq!(got, expect, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn sync_scan_range_partitions_cover_exactly_once() {
        // Disjoint top-level prefix ranges must tile the full scan: this is
        // the invariant the morsel-driven executor relies on.
        let mut rng = Xoshiro256StarStar::new(13);
        let a: Vec<u64> = (0..3000).map(|_| rng.below(1 << 16)).collect();
        let b: Vec<u64> = (0..3000).map(|_| rng.below(1 << 16)).collect();
        let ta = tree_of(&a);
        let tb = tree_of(&b);
        let mut full = Vec::new();
        sync_scan(&ta, &tb, |k, _, _| full.push(k));
        let parts = 8u64;
        let span = (1u64 << 16) / parts;
        let mut tiled = Vec::new();
        for p in 0..parts {
            sync_scan_range(&ta, &tb, p * span, (p + 1) * span - 1, |k, _, _| {
                tiled.push(k)
            });
        }
        assert_eq!(tiled, full);
    }

    #[test]
    fn sync_scan_range_inverted_and_empty() {
        let ta = tree_of(&[1, 2, 3]);
        let tb = tree_of(&[2, 3, 4]);
        let empty = PrefixTree::<u32>::pt4_32();
        let mut n = 0;
        sync_scan_range(&ta, &tb, 10, 5, |_, _, _| n += 1);
        sync_scan_range(&ta, &empty, 0, u32::MAX as u64, |_, _, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn sync_scan_range_64bit_keys() {
        let mut ta = PrefixTree::<u32>::pt4_64();
        let mut tb = PrefixTree::<u32>::pt4_64();
        for k in [1u64 << 40, (1 << 40) + 1, 1 << 50, u64::MAX] {
            ta.insert(k, 0);
            tb.insert(k, 1);
        }
        let mut got = Vec::new();
        sync_scan_range(&ta, &tb, 1 << 40, 1 << 50, |k, _, _| got.push(k));
        assert_eq!(got, vec![1 << 40, (1 << 40) + 1, 1 << 50]);
        let mut top = Vec::new();
        sync_scan_range(&ta, &tb, (1 << 50) + 1, u64::MAX, |k, _, _| top.push(k));
        assert_eq!(top, vec![u64::MAX]);
    }

    #[test]
    fn sync_scan_empty_sides() {
        let empty = PrefixTree::<u32>::pt4_32();
        let full = tree_of(&[1, 2, 3]);
        let mut n = 0;
        sync_scan(&empty, &full, |_, _, _| n += 1);
        sync_scan(&full, &empty, |_, _, _| n += 1);
        sync_scan(&empty, &empty, |_, _, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn sync_scan_identical_trees() {
        let t = tree_of(&[10, 20, 30, 40]);
        let mut got = Vec::new();
        sync_scan(&t, &t, |k, _, _| got.push(k));
        assert_eq!(got, vec![10, 20, 30, 40]);
    }

    #[test]
    fn sync_scan_content_vs_subtree_cases() {
        // Left stores a single shallow content where right has a deep
        // subtree, and vice versa.
        let ta = tree_of(&[0x1000_0000]);
        let tb = tree_of(&[0x1000_0000, 0x1000_0001, 0x1FFF_FFFF]);
        let mut got = Vec::new();
        sync_scan(&ta, &tb, |k, _, _| got.push(k));
        assert_eq!(got, vec![0x1000_0000]);
        let mut got2 = Vec::new();
        sync_scan(&tb, &ta, |k, _, _| got2.push(k));
        assert_eq!(got2, vec![0x1000_0000]);
    }

    #[test]
    fn sync_scan_shallow_content_key_missing_in_deep_subtree() {
        let ta = tree_of(&[0x1000_0002]);
        let tb = tree_of(&[0x1000_0000, 0x1000_0001]);
        let mut n = 0;
        sync_scan(&ta, &tb, |_, _, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn sync_scan_passes_all_duplicate_values() {
        let mut ta = PrefixTree::<u32>::pt4_32();
        let mut tb = PrefixTree::<u32>::pt4_32();
        for i in 0..5 {
            ta.insert(7, i);
        }
        tb.insert(7, 100);
        tb.insert(7, 200);
        let mut pairs = 0;
        sync_scan(&ta, &tb, |k, lv, rv| {
            assert_eq!(k, 7);
            assert_eq!(lv.count(), 5);
            assert_eq!(rv.count(), 2);
            pairs += 1;
        });
        assert_eq!(pairs, 1);
    }

    #[test]
    #[should_panic(expected = "identical tree geometry")]
    fn sync_scan_rejects_mismatched_geometry() {
        let a = PrefixTree::<u32>::pt4_32();
        let b = PrefixTree::<u32>::pt4_64();
        sync_scan(&a, &b, |_, _, _| {});
    }

    #[test]
    fn intersect_and_union_match_btreeset() {
        let mut rng = Xoshiro256StarStar::new(9);
        let a: Vec<u64> = (0..2000).map(|_| rng.below(1 << 12)).collect();
        let b: Vec<u64> = (0..2000).map(|_| rng.below(1 << 12)).collect();
        let ta = tree_of(&a);
        let tb = tree_of(&b);
        let sa: BTreeSet<u64> = a.iter().copied().collect();
        let sb: BTreeSet<u64> = b.iter().copied().collect();

        let inter = intersect(&ta, &tb);
        let expect_i: Vec<u64> = sa.intersection(&sb).copied().collect();
        assert_eq!(inter.keys().collect::<Vec<_>>(), expect_i);

        let uni = union_distinct(&ta, &tb);
        let expect_u: Vec<u64> = sa.union(&sb).copied().collect();
        assert_eq!(uni.keys().collect::<Vec<_>>(), expect_u);
    }

    #[test]
    fn union_prefers_left_values() {
        let mut ta = PrefixTree::<u32>::pt4_32();
        let mut tb = PrefixTree::<u32>::pt4_32();
        ta.insert(1, 10);
        tb.insert(1, 99);
        tb.insert(2, 20);
        let u = union_distinct(&ta, &tb);
        assert_eq!(u.get_first(1), Some(10));
        assert_eq!(u.get_first(2), Some(20));
    }

    #[test]
    fn union_scan_reports_sides() {
        let ta = tree_of(&[1, 3]);
        let tb = tree_of(&[2, 3]);
        let mut seen = Vec::new();
        sync_union_scan(&ta, &tb, |k, l, r| {
            seen.push((k, l.is_some(), r.is_some()));
        });
        assert_eq!(
            seen,
            vec![(1, true, false), (2, false, true), (3, true, true)]
        );
    }

    #[test]
    fn sync_scan_mixed_value_types() {
        // VL and VR may differ (e.g. rid lists vs aggregation accumulators).
        let mut ta = PrefixTree::<u32>::pt4_32();
        let mut tb = PrefixTree::<i64>::pt4_32();
        ta.insert(4, 1);
        tb.insert(4, -9);
        let mut hits = 0;
        sync_scan(&ta, &tb, |k, mut lv, mut rv| {
            assert_eq!(k, 4);
            assert_eq!(*lv.next().unwrap(), 1u32);
            assert_eq!(*rv.next().unwrap(), -9i64);
            hits += 1;
        });
        assert_eq!(hits, 1);
    }
}
