//! Generalized prefix tree (§2.1 of the QPPT paper; Böhm et al., BTW 2011).
//!
//! The prefix tree is an **order-preserving, unbalanced** in-memory index.
//! It splits the binary representation of a key into fragments of an equal
//! prefix length `k′`; each fragment selects a bucket in a node of `2^k′`
//! buckets, so a key has a fixed position in the tree and no rebalancing is
//! ever needed. Thanks to *dynamic expansion*, a key is stored in a content
//! entry at the shallowest level where its fragment path is unique, which is
//! why content entries must store the complete key for comparison.
//!
//! What this crate provides on top of the basic structure, all of which QPPT
//! relies on:
//!
//! * multi-value keys backed by the segmented duplicate storage of §2.4
//!   ([`qppt_mem::DupArena`]);
//! * aggregating inserts ([`PrefixTree::insert_merge`]) — the mechanism that
//!   makes grouping "a side effect" of output indexing (§3);
//! * ordered iteration and range scans (the tree *is* the sort order);
//! * batch lookups and inserts with software prefetching (§2.3, Alg. 1);
//! * the **synchronous index scan** (§4.2): a structural co-scan of two trees
//!   that skips every subtree not populated on both sides — the join/set-op
//!   kernel of QPPT;
//! * set operators (intersect / distinct union) built on the synchronous
//!   scan, used for multi-predicate selections (§4.1).

mod batch;
mod iter;
mod scan;
mod stats;
mod tree;

pub use iter::{Iter, RangeIter};
pub use scan::{intersect, sync_scan, sync_scan_range, sync_union_scan, union_distinct};
pub use stats::TrieStats;
pub use tree::{PrefixTree, Values};

/// Errors from tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrieError {
    /// `k′` must be in `1..=16`.
    InvalidKPrime(u8),
    /// Key width must be in `1..=64` and a multiple of `k′`.
    InvalidKeyBits { key_bits: u8, kprime: u8 },
}

impl core::fmt::Display for TrieError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TrieError::InvalidKPrime(k) => {
                write!(f, "invalid prefix length k'={k} (must be 1..=16)")
            }
            TrieError::InvalidKeyBits { key_bits, kprime } => write!(
                f,
                "key width {key_bits} must be in 1..=64 and a multiple of k'={kprime}"
            ),
        }
    }
}

impl std::error::Error for TrieError {}

/// Static configuration of a [`PrefixTree`]: key width and prefix length.
///
/// The paper finds `k′ = 4` to be the best general trade-off between memory
/// accesses per key and memory consumption (§2.1); Ablation A3 re-measures
/// that trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrieConfig {
    key_bits: u8,
    kprime: u8,
}

impl TrieConfig {
    /// Creates a configuration, validating that `kprime ∈ 1..=16` and that
    /// it divides `key_bits ∈ 1..=64`.
    pub fn new(key_bits: u8, kprime: u8) -> Result<Self, TrieError> {
        if kprime == 0 || kprime > 16 {
            return Err(TrieError::InvalidKPrime(kprime));
        }
        if key_bits == 0 || key_bits > 64 || !key_bits.is_multiple_of(kprime) {
            return Err(TrieError::InvalidKeyBits { key_bits, kprime });
        }
        Ok(Self { key_bits, kprime })
    }

    /// The paper's default: 32-bit keys, `k′ = 4` ("PT4").
    pub fn pt4_32() -> Self {
        Self {
            key_bits: 32,
            kprime: 4,
        }
    }

    /// 64-bit keys, `k′ = 4` (used for composite keys).
    pub fn pt4_64() -> Self {
        Self {
            key_bits: 64,
            kprime: 4,
        }
    }

    /// Key width in bits.
    #[inline]
    pub fn key_bits(&self) -> u8 {
        self.key_bits
    }

    /// Fragment width `k′` in bits.
    #[inline]
    pub fn kprime(&self) -> u8 {
        self.kprime
    }

    /// Buckets per node (`2^k′`).
    #[inline]
    pub fn fanout(&self) -> usize {
        1usize << self.kprime
    }

    /// Maximum tree depth (`key_bits / k′`).
    #[inline]
    pub fn levels(&self) -> u32 {
        (self.key_bits / self.kprime) as u32
    }

    /// Upper bound (exclusive) of the key domain; `None` if the full `u64`
    /// domain is allowed.
    #[inline]
    pub fn key_limit(&self) -> Option<u64> {
        if self.key_bits == 64 {
            None
        } else {
            Some(1u64 << self.key_bits)
        }
    }

    /// Extracts the fragment of `key` for `level` (level 0 = most
    /// significant fragment, so bucket order equals key order).
    #[inline]
    pub fn fragment(&self, key: u64, level: u32) -> usize {
        let shift = self.key_bits as u32 - (level + 1) * self.kprime as u32;
        ((key >> shift) as usize) & (self.fanout() - 1)
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;

    #[test]
    fn valid_configs() {
        for (bits, k) in [
            (32, 4),
            (64, 4),
            (32, 8),
            (64, 8),
            (32, 2),
            (16, 16),
            (64, 1),
        ] {
            let c = TrieConfig::new(bits, k).unwrap();
            assert_eq!(c.levels() * k as u32, bits as u32);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(matches!(
            TrieConfig::new(32, 0),
            Err(TrieError::InvalidKPrime(0))
        ));
        assert!(matches!(
            TrieConfig::new(32, 17),
            Err(TrieError::InvalidKPrime(17))
        ));
        assert!(matches!(
            TrieConfig::new(0, 4),
            Err(TrieError::InvalidKeyBits { .. })
        ));
        assert!(matches!(
            TrieConfig::new(30, 4),
            Err(TrieError::InvalidKeyBits { .. })
        ));
        assert!(matches!(
            TrieConfig::new(65, 1),
            Err(TrieError::InvalidKeyBits { .. })
        ));
    }

    #[test]
    fn fragments_msb_first() {
        let c = TrieConfig::pt4_32();
        let key = 0xABCD_1234u64;
        assert_eq!(c.fragment(key, 0), 0xA);
        assert_eq!(c.fragment(key, 1), 0xB);
        assert_eq!(c.fragment(key, 7), 0x4);
    }

    #[test]
    fn key_limit() {
        assert_eq!(TrieConfig::pt4_32().key_limit(), Some(1 << 32));
        assert_eq!(TrieConfig::pt4_64().key_limit(), None);
    }
}
