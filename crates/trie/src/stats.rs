//! Structural statistics: memory footprint and depth profile.
//!
//! The paper's discussion of `k′` (§2.1) is a trade-off between memory
//! accesses per key (≈ depth) and memory consumption; these statistics let
//! the Ablation A3 bench and the engine's operator statistics report both.

use crate::tree::{decode, PrefixTree, Slot};

/// A snapshot of a tree's structure and memory footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrieStats {
    /// Number of inner nodes (including the root).
    pub nodes: usize,
    /// Number of content entries (= distinct keys).
    pub distinct_keys: usize,
    /// Total stored values (≥ distinct keys).
    pub total_values: usize,
    /// Bytes held by the node bucket arrays.
    pub node_bytes: usize,
    /// Bytes held by content entries.
    pub content_bytes: usize,
    /// Bytes held by duplicate segments.
    pub dup_bytes: usize,
    /// Deepest level at which a content entry sits (root = level 0); 0 for
    /// an empty tree.
    pub max_depth: u32,
}

impl TrieStats {
    /// Total tracked bytes.
    pub fn total_bytes(&self) -> usize {
        self.node_bytes + self.content_bytes + self.dup_bytes
    }
}

impl<V: Copy + Default> PrefixTree<V> {
    /// Computes structural statistics (walks the tree for the depth profile).
    pub fn stats(&self) -> TrieStats {
        let fanout = self.cfg.fanout();
        let nodes = self.slots.len() / fanout;
        let mut max_depth = 0u32;
        // Iterative DFS over (node, level).
        let mut stack = vec![(0u32, 0u32)];
        while let Some((node, level)) = stack.pop() {
            for b in 0..fanout {
                match decode(self.slots[self.slot_index(node, b)]) {
                    Slot::Empty => {}
                    Slot::Content(_) => max_depth = max_depth.max(level),
                    Slot::Node(n) => stack.push((n, level + 1)),
                }
            }
        }
        TrieStats {
            nodes,
            distinct_keys: self.len(),
            total_values: self.total_values(),
            node_bytes: self.slots.len() * core::mem::size_of::<u32>(),
            content_bytes: self.contents.len() * core::mem::size_of::<crate::tree::Content<V>>(),
            dup_bytes: self.dups.allocated_bytes(),
            max_depth,
        }
    }

    /// Bytes of memory attributable to this tree (nodes + contents + dups).
    pub fn memory_bytes(&self) -> usize {
        self.stats().total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrieConfig;

    #[test]
    fn empty_tree_stats() {
        let t = PrefixTree::<u32>::pt4_32();
        let s = t.stats();
        assert_eq!(s.nodes, 1); // root
        assert_eq!(s.distinct_keys, 0);
        assert_eq!(s.max_depth, 0);
        assert!(s.total_bytes() > 0);
    }

    #[test]
    fn depth_grows_with_shared_prefixes() {
        let mut t = PrefixTree::<u32>::pt4_32();
        t.insert(0x0000_0000, 1);
        assert_eq!(t.stats().max_depth, 0);
        t.insert(0x0000_0001, 2); // shares 7 fragments → depth 7
        assert_eq!(t.stats().max_depth, 7);
    }

    #[test]
    fn higher_kprime_is_shallower_but_bigger_when_sparse() {
        // §2.1: "Setting k′ to a high value ... halves the maximum number of
        // memory accesses per key, but increases the memory consumption, if
        // the key distribution is not dense." Use sparse random 32-bit keys.
        let build = |k: u8| {
            let mut rng = qppt_mem::Xoshiro256StarStar::new(123);
            let mut t = PrefixTree::<u32>::new(TrieConfig::new(32, k).unwrap());
            for i in 0..2000u32 {
                t.insert(rng.next_u32() as u64, i);
            }
            t.stats()
        };
        let s2 = build(2);
        let s8 = build(8);
        assert!(s8.max_depth < s2.max_depth);
        assert!(s8.node_bytes > s2.node_bytes);
    }

    #[test]
    fn dup_bytes_counted() {
        let mut t = PrefixTree::<u32>::pt4_32();
        for i in 0..10_000 {
            t.insert(1, i);
        }
        assert!(t.stats().dup_bytes >= 10_000 * 4);
    }
}
