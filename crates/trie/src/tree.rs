//! Core prefix-tree structure: slot arena, contents, insert paths, lookups.

use qppt_mem::dup::{DupArena, DupIter, DupList};

use crate::TrieConfig;

/// Slot encoding inside node bucket arrays (one `u32` per bucket):
/// `0` = empty; high bit set = content entry (index in the low 31 bits);
/// otherwise an inner node (index + 1).
pub(crate) const EMPTY: u32 = 0;
const CONTENT_TAG: u32 = 0x8000_0000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    Empty,
    Node(u32),
    Content(u32),
}

#[inline]
pub(crate) fn decode(slot: u32) -> Slot {
    if slot == EMPTY {
        Slot::Empty
    } else if slot & CONTENT_TAG != 0 {
        Slot::Content(slot & !CONTENT_TAG)
    } else {
        Slot::Node(slot - 1)
    }
}

#[inline]
fn enc_node(idx: u32) -> u32 {
    debug_assert!(idx < CONTENT_TAG - 1);
    idx + 1
}

#[inline]
fn enc_content(idx: u32) -> u32 {
    debug_assert!(idx & CONTENT_TAG == 0);
    idx | CONTENT_TAG
}

/// Value storage of a content entry. The single-value case is by far the
/// most common (unique keys), so it is stored inline; further values spill
/// into the segmented duplicate arena of §2.4.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Payload<V> {
    One(V),
    Many(DupList),
}

#[derive(Debug)]
pub(crate) struct Content<V> {
    pub(crate) key: u64,
    pub(crate) payload: Payload<V>,
}

/// An order-preserving, unbalanced prefix tree mapping `u64` keys (of a
/// configured bit width) to one or more values.
///
/// See the crate docs for the role this structure plays in QPPT. Because the
/// engine controls all keys, out-of-domain keys are programming errors and
/// panic (`assert!`) rather than returning `Result` on the hot path.
#[derive(Debug)]
pub struct PrefixTree<V> {
    pub(crate) cfg: TrieConfig,
    /// Node arena: node `i` owns `slots[i*fanout .. (i+1)*fanout]`.
    pub(crate) slots: Vec<u32>,
    pub(crate) contents: Vec<Content<V>>,
    pub(crate) dups: DupArena<V>,
    distinct: usize,
    total_values: usize,
}

impl<V: Copy + Default> PrefixTree<V> {
    /// Creates an empty tree with the given configuration. The root node is
    /// pre-allocated (node 0).
    pub fn new(cfg: TrieConfig) -> Self {
        Self {
            cfg,
            slots: vec![EMPTY; cfg.fanout()],
            contents: Vec::new(),
            dups: DupArena::new(),
            distinct: 0,
            total_values: 0,
        }
    }

    /// Convenience constructor for the paper's default PT4 over 32-bit keys.
    pub fn pt4_32() -> Self {
        Self::new(TrieConfig::pt4_32())
    }

    /// Convenience constructor for PT4 over 64-bit keys.
    pub fn pt4_64() -> Self {
        Self::new(TrieConfig::pt4_64())
    }

    /// The tree's configuration.
    #[inline]
    pub fn config(&self) -> TrieConfig {
        self.cfg
    }

    /// Number of distinct keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.distinct
    }

    /// `true` if the tree holds no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.distinct == 0
    }

    /// Total number of stored values (≥ number of distinct keys).
    #[inline]
    pub fn total_values(&self) -> usize {
        self.total_values
    }

    #[inline]
    pub(crate) fn check_key(&self, key: u64) {
        if let Some(limit) = self.cfg.key_limit() {
            assert!(
                key < limit,
                "key {key:#x} exceeds {}-bit domain",
                self.cfg.key_bits()
            );
        }
    }

    #[inline]
    fn alloc_node(&mut self) -> u32 {
        let idx = (self.slots.len() / self.cfg.fanout()) as u32;
        self.slots
            .resize(self.slots.len() + self.cfg.fanout(), EMPTY);
        idx
    }

    #[inline]
    pub(crate) fn slot_index(&self, node: u32, frag: usize) -> usize {
        node as usize * self.cfg.fanout() + frag
    }

    /// Inserts `(key, value)`; duplicate keys accumulate values
    /// (multimap semantics — this is how intermediate indexed tables store
    /// several tuples per key).
    pub fn insert(&mut self, key: u64, value: V) {
        self.total_values += 1;
        self.upsert(key, value, |dups, payload, v| match payload {
            Payload::One(first) => {
                let mut list = dups.new_list(*first);
                dups.push(&mut list, v);
                *payload = Payload::Many(list);
            }
            Payload::Many(list) => dups.push(list, v),
        });
    }

    /// Inserts `(key, value)`, combining with the existing value via `merge`
    /// when the key is already present (upsert). This is the aggregation
    /// path: a join-group operator inserts into its output index with
    /// `merge = |acc, v| *acc += v` and grouping happens as a side effect.
    ///
    /// Trees built with `insert_merge` keep exactly one value per key; mixing
    /// `insert` and `insert_merge` on the same key merges into the *first*
    /// stored value and is not meaningful.
    pub fn insert_merge(&mut self, key: u64, value: V, merge: impl FnOnce(&mut V, V)) {
        let mut merge = Some(merge);
        let before = self.contents.len();
        self.upsert(key, value, |dups, payload, v| {
            let m = merge.take().expect("merge closure called once");
            match payload {
                Payload::One(acc) => m(acc, v),
                Payload::Many(list) => {
                    // Degenerate mixed-use case: merge into the first value.
                    let mut first = None;
                    dups.for_each_segment(list, |seg| {
                        if first.is_none() && !seg.is_empty() {
                            first = Some(seg[0]);
                        }
                    });
                    let mut acc = first.expect("duplicate list is never empty");
                    m(&mut acc, v);
                    *payload = Payload::One(acc);
                }
            }
        });
        if self.contents.len() > before {
            self.total_values += 1;
        }
    }

    /// Shared descent + dynamic-expansion logic. `on_existing` is invoked
    /// when the key is already present.
    fn upsert(
        &mut self,
        key: u64,
        value: V,
        on_existing: impl FnOnce(&mut DupArena<V>, &mut Payload<V>, V),
    ) {
        self.check_key(key);
        let mut node = 0u32;
        let mut level = 0u32;
        loop {
            let si = self.slot_index(node, self.cfg.fragment(key, level));
            match decode(self.slots[si]) {
                Slot::Empty => {
                    let c = self.contents.len() as u32;
                    self.contents.push(Content {
                        key,
                        payload: Payload::One(value),
                    });
                    self.slots[si] = enc_content(c);
                    self.distinct += 1;
                    return;
                }
                Slot::Content(c) => {
                    if self.contents[c as usize].key == key {
                        let content = &mut self.contents[c as usize];
                        on_existing(&mut self.dups, &mut content.payload, value);
                        return;
                    }
                    // Dynamic expansion: push the resident content down until
                    // its fragment path diverges from the new key's.
                    self.expand_and_insert(si, c, key, value, level);
                    self.distinct += 1;
                    return;
                }
                Slot::Node(n) => {
                    node = n;
                    level += 1;
                    debug_assert!(
                        level < self.cfg.levels(),
                        "inner node below the last level is impossible"
                    );
                }
            }
        }
    }

    /// Replaces the content at `slot` with a chain of inner nodes deep enough
    /// to separate `existing`'s key from `key`, then stores both.
    fn expand_and_insert(
        &mut self,
        mut slot: usize,
        existing: u32,
        key: u64,
        value: V,
        mut level: u32,
    ) {
        let existing_key = self.contents[existing as usize].key;
        debug_assert_ne!(existing_key, key);
        loop {
            level += 1;
            debug_assert!(
                level < self.cfg.levels(),
                "distinct keys must diverge within levels"
            );
            let node = self.alloc_node();
            self.slots[slot] = enc_node(node);
            let old_frag = self.cfg.fragment(existing_key, level);
            let new_frag = self.cfg.fragment(key, level);
            if old_frag == new_frag {
                slot = self.slot_index(node, old_frag);
                continue;
            }
            let c = self.contents.len() as u32;
            self.contents.push(Content {
                key,
                payload: Payload::One(value),
            });
            let oi = self.slot_index(node, old_frag);
            let ni = self.slot_index(node, new_frag);
            self.slots[oi] = enc_content(existing);
            self.slots[ni] = enc_content(c);
            return;
        }
    }

    /// Index of the content entry for `key`, if present — the raw form of
    /// [`get`](Self::get), also used by the batch and scan paths.
    #[inline]
    pub(crate) fn find_content(&self, key: u64) -> Option<u32> {
        self.find_content_from(0, 0, key)
    }

    /// Descends from `node` at `level` (the synchronous scan resumes partial
    /// descents this way).
    pub(crate) fn find_content_from(&self, mut node: u32, mut level: u32, key: u64) -> Option<u32> {
        loop {
            let si = self.slot_index(node, self.cfg.fragment(key, level));
            match decode(self.slots[si]) {
                Slot::Empty => return None,
                Slot::Content(c) => {
                    return (self.contents[c as usize].key == key).then_some(c);
                }
                Slot::Node(n) => {
                    node = n;
                    level += 1;
                    debug_assert!(level < self.cfg.levels());
                }
            }
        }
    }

    /// Looks up a key, returning an iterator over its values.
    pub fn get(&self, key: u64) -> Option<Values<'_, V>> {
        self.check_key(key);
        self.find_content(key).map(|c| self.values_of(c))
    }

    /// Looks up a key, returning its first value (insertion order). For
    /// unique indexes this is *the* value.
    pub fn get_first(&self, key: u64) -> Option<V> {
        self.get(key)
            .map(|mut vs| *vs.next().expect("content entries hold ≥1 value"))
    }

    /// `true` if the key is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.check_key(key);
        self.find_content(key).is_some()
    }

    /// Number of values stored under `key` (0 if absent).
    pub fn value_count(&self, key: u64) -> usize {
        self.get(key).map_or(0, |v| v.len())
    }

    pub(crate) fn values_of(&self, content: u32) -> Values<'_, V> {
        match &self.contents[content as usize].payload {
            Payload::One(v) => Values {
                len: 1,
                inner: ValuesInner::One(Some(v)),
            },
            Payload::Many(list) => Values {
                len: list.len(),
                inner: ValuesInner::Many(self.dups.iter(list)),
            },
        }
    }

    pub(crate) fn key_of(&self, content: u32) -> u64 {
        self.contents[content as usize].key
    }

    /// Calls `f` with each contiguous run of values stored under `key`.
    /// Single values arrive as a 1-element slice; duplicate lists arrive
    /// segment by segment — each segment is sequential memory (§2.4), so
    /// this is the fastest way to scan large duplicate lists.
    pub fn for_each_value_segment(&self, key: u64, mut f: impl FnMut(&[V])) {
        self.check_key(key);
        let Some(content) = self.find_content(key) else {
            return;
        };
        match &self.contents[content as usize].payload {
            Payload::One(v) => f(core::slice::from_ref(v)),
            Payload::Many(list) => self.dups.for_each_segment(list, |seg| f(seg)),
        }
    }
}

/// Iterator over the values stored under one key.
pub struct Values<'a, V> {
    len: usize,
    inner: ValuesInner<'a, V>,
}

enum ValuesInner<'a, V> {
    One(Option<&'a V>),
    Many(DupIter<'a, V>),
}

impl<'a, V: Copy + Default> Iterator for Values<'a, V> {
    type Item = &'a V;

    fn next(&mut self) -> Option<&'a V> {
        let out = match &mut self.inner {
            ValuesInner::One(v) => v.take(),
            ValuesInner::Many(it) => it.next(),
        };
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.len, Some(self.len))
    }
}

impl<'a, V: Copy + Default> ExactSizeIterator for Values<'a, V> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t = PrefixTree::<u32>::pt4_32();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.get(0).is_none());
        assert!(!t.contains_key(12345));
    }

    #[test]
    fn insert_and_get_single() {
        let mut t = PrefixTree::<u32>::pt4_32();
        t.insert(0xDEAD_BEEF, 7);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_first(0xDEAD_BEEF), Some(7));
        assert_eq!(t.get_first(0xDEAD_BEEE), None);
    }

    #[test]
    fn keys_sharing_long_prefixes_expand() {
        let mut t = PrefixTree::<u32>::pt4_32();
        // Differ only in the last fragment → expansion to the deepest level.
        t.insert(0x1234_5670, 1);
        t.insert(0x1234_5671, 2);
        // And one that differs in the first fragment.
        t.insert(0xF234_5670, 3);
        assert_eq!(t.get_first(0x1234_5670), Some(1));
        assert_eq!(t.get_first(0x1234_5671), Some(2));
        assert_eq!(t.get_first(0xF234_5670), Some(3));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicates_accumulate_in_order() {
        let mut t = PrefixTree::<u32>::pt4_32();
        for i in 0..100 {
            t.insert(42, i);
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.total_values(), 100);
        assert_eq!(t.value_count(42), 100);
        let vals: Vec<u32> = t.get(42).unwrap().copied().collect();
        assert_eq!(vals, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn insert_merge_aggregates() {
        let mut t = PrefixTree::<i64>::pt4_64();
        for (k, v) in [(5u64, 10i64), (5, 32), (9, 1), (5, 100)] {
            t.insert_merge(k, v, |acc, v| *acc += v);
        }
        assert_eq!(t.get_first(5), Some(142));
        assert_eq!(t.get_first(9), Some(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_values(), 2);
    }

    #[test]
    fn boundary_keys_32bit() {
        let mut t = PrefixTree::<u32>::pt4_32();
        t.insert(0, 1);
        t.insert(u32::MAX as u64, 2);
        t.insert(1, 3);
        assert_eq!(t.get_first(0), Some(1));
        assert_eq!(t.get_first(u32::MAX as u64), Some(2));
        assert_eq!(t.get_first(1), Some(3));
    }

    #[test]
    fn boundary_keys_64bit() {
        let mut t = PrefixTree::<u32>::pt4_64();
        t.insert(0, 1);
        t.insert(u64::MAX, 2);
        assert_eq!(t.get_first(u64::MAX), Some(2));
        assert_eq!(t.get_first(0), Some(1));
    }

    #[test]
    #[should_panic(expected = "exceeds 32-bit domain")]
    fn out_of_domain_key_panics() {
        let mut t = PrefixTree::<u32>::pt4_32();
        t.insert(1 << 32, 0);
    }

    #[test]
    fn kprime_variants_agree() {
        for k in [1u8, 2, 4, 8, 16] {
            let mut t = PrefixTree::<u32>::new(TrieConfig::new(32, k).unwrap());
            for i in 0..500u64 {
                t.insert(i * 2_654_435_761 % (1 << 32), i as u32);
            }
            for i in 0..500u64 {
                assert_eq!(
                    t.get_first(i * 2_654_435_761 % (1 << 32)),
                    Some(i as u32),
                    "k'={k}"
                );
            }
        }
    }

    #[test]
    fn value_segments_concatenate_to_all_values() {
        let mut t = PrefixTree::<u32>::pt4_32();
        for i in 0..1000 {
            t.insert(3, i);
        }
        t.insert(4, 9);
        let mut got = Vec::new();
        t.for_each_value_segment(3, |seg| got.extend_from_slice(seg));
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
        let mut single = Vec::new();
        t.for_each_value_segment(4, |seg| single.extend_from_slice(seg));
        assert_eq!(single, vec![9]);
        t.for_each_value_segment(5, |_| panic!("absent key yields nothing"));
    }

    #[test]
    fn get_first_returns_first_inserted() {
        let mut t = PrefixTree::<u32>::pt4_32();
        t.insert(7, 99);
        t.insert(7, 1);
        assert_eq!(t.get_first(7), Some(99));
    }
}
