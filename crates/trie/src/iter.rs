//! Ordered iteration and range scans.
//!
//! Because fragments are taken most-significant-first and buckets are
//! visited in index order, a depth-first walk yields keys in ascending
//! order — "the resulting index is physically a prefix tree, it is already
//! sorted" (§3). Range scans prune subtrees whose key interval does not
//! intersect the requested range.

use crate::tree::{decode, PrefixTree, Slot, Values};

struct Frame {
    node: u32,
    bucket: usize,
    /// Key bits accumulated above this node (aligned to the low end).
    prefix: u64,
    level: u32,
}

/// Ordered iterator over `(key, values)` pairs.
pub struct Iter<'a, V> {
    tree: &'a PrefixTree<V>,
    stack: Vec<Frame>,
}

impl<'a, V: Copy + Default> Iterator for Iter<'a, V> {
    type Item = (u64, Values<'a, V>);

    fn next(&mut self) -> Option<Self::Item> {
        let fanout = self.tree.cfg.fanout();
        loop {
            let frame = self.stack.last_mut()?;
            if frame.bucket == fanout {
                self.stack.pop();
                continue;
            }
            let si = self.tree.slot_index(frame.node, frame.bucket);
            let bucket = frame.bucket;
            frame.bucket += 1;
            match decode(self.tree.slots[si]) {
                Slot::Empty => continue,
                Slot::Content(c) => {
                    return Some((self.tree.key_of(c), self.tree.values_of(c)));
                }
                Slot::Node(n) => {
                    let prefix = (frame.prefix << self.tree.cfg.kprime()) | bucket as u64;
                    let level = frame.level + 1;
                    self.stack.push(Frame {
                        node: n,
                        bucket: 0,
                        prefix,
                        level,
                    });
                }
            }
        }
    }
}

/// Ordered iterator over `(key, values)` pairs with keys in `[lo, hi]`.
pub struct RangeIter<'a, V> {
    tree: &'a PrefixTree<V>,
    stack: Vec<Frame>,
    lo: u64,
    hi: u64,
}

impl<'a, V: Copy + Default> Iterator for RangeIter<'a, V> {
    type Item = (u64, Values<'a, V>);

    fn next(&mut self) -> Option<Self::Item> {
        let cfg = self.tree.cfg;
        let fanout = cfg.fanout();
        let kprime = cfg.kprime() as u32;
        let key_bits = cfg.key_bits() as u32;
        loop {
            let frame = self.stack.last_mut()?;
            if frame.bucket == fanout {
                self.stack.pop();
                continue;
            }
            let si = self.tree.slot_index(frame.node, frame.bucket);
            let bucket = frame.bucket;
            let level = frame.level;
            let prefix = frame.prefix;
            frame.bucket += 1;
            match decode(self.tree.slots[si]) {
                Slot::Empty => continue,
                Slot::Content(c) => {
                    let key = self.tree.key_of(c);
                    if key >= self.lo && key <= self.hi {
                        return Some((key, self.tree.values_of(c)));
                    }
                }
                Slot::Node(n) => {
                    // Key interval covered by this subtree:
                    // [base, base + 2^rem - 1] where `rem` bits remain below.
                    let rem = key_bits - (level + 1) * kprime;
                    let base = ((prefix << kprime) | bucket as u64) << rem;
                    let span_max = base | if rem == 0 { 0 } else { (1u64 << rem) - 1 };
                    if span_max < self.lo || base > self.hi {
                        continue;
                    }
                    self.stack.push(Frame {
                        node: n,
                        bucket: 0,
                        prefix: (prefix << kprime) | bucket as u64,
                        level: level + 1,
                    });
                }
            }
        }
    }
}

impl<V: Copy + Default> PrefixTree<V> {
    /// Iterates all `(key, values)` pairs in ascending key order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            tree: self,
            stack: vec![Frame {
                node: 0,
                bucket: 0,
                prefix: 0,
                level: 0,
            }],
        }
    }

    /// Iterates `(key, values)` pairs with `lo <= key <= hi`, in ascending
    /// key order. Empty if `lo > hi`.
    pub fn range(&self, lo: u64, hi: u64) -> RangeIter<'_, V> {
        RangeIter {
            tree: self,
            stack: if lo <= hi {
                vec![Frame {
                    node: 0,
                    bucket: 0,
                    prefix: 0,
                    level: 0,
                }]
            } else {
                Vec::new()
            },
            lo,
            hi,
        }
    }

    /// All keys in ascending order (convenience for tests and set ops).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Smallest key, if any.
    pub fn min_key(&self) -> Option<u64> {
        self.keys().next()
    }

    /// Largest key, if any. O(depth · fanout): walks the right spine.
    pub fn max_key(&self) -> Option<u64> {
        let mut node = 0u32;
        let mut best: Option<u64> = None;
        'outer: loop {
            let fanout = self.cfg.fanout();
            for b in (0..fanout).rev() {
                match decode(self.slots[self.slot_index(node, b)]) {
                    Slot::Empty => continue,
                    Slot::Content(c) => {
                        let k = self.key_of(c);
                        best = Some(best.map_or(k, |b: u64| b.max(k)));
                        return best;
                    }
                    Slot::Node(n) => {
                        node = n;
                        continue 'outer;
                    }
                }
            }
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_mem::Xoshiro256StarStar;
    use std::collections::BTreeMap;

    fn build_pair(n: usize, seed: u64) -> (PrefixTree<u32>, BTreeMap<u64, Vec<u32>>) {
        let mut t = PrefixTree::<u32>::pt4_32();
        let mut m: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        let mut rng = Xoshiro256StarStar::new(seed);
        for i in 0..n {
            // Small domain → plenty of duplicates.
            let k = rng.below(1 << 16);
            t.insert(k, i as u32);
            m.entry(k).or_default().push(i as u32);
        }
        (t, m)
    }

    #[test]
    fn iteration_matches_btreemap() {
        let (t, m) = build_pair(5000, 1);
        let got: Vec<(u64, Vec<u32>)> = t.iter().map(|(k, v)| (k, v.copied().collect())).collect();
        let expect: Vec<(u64, Vec<u32>)> = m.into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn iteration_empty_tree() {
        let t = PrefixTree::<u32>::pt4_32();
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.range(0, u32::MAX as u64).count(), 0);
        assert_eq!(t.min_key(), None);
        assert_eq!(t.max_key(), None);
    }

    #[test]
    fn range_matches_btreemap() {
        let (t, m) = build_pair(3000, 2);
        for (lo, hi) in [
            (0u64, u32::MAX as u64),
            (100, 50_000),
            (1 << 15, (1 << 16) - 1),
            (7, 7),
            (60_000, 70_000),
        ] {
            let got: Vec<u64> = t.range(lo, hi).map(|(k, _)| k).collect();
            let expect: Vec<u64> = m.range(lo..=hi).map(|(&k, _)| k).collect();
            assert_eq!(got, expect, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn inverted_range_is_empty() {
        let (t, _) = build_pair(100, 3);
        assert_eq!(t.range(500, 100).count(), 0);
    }

    #[test]
    fn point_range_finds_exact_key() {
        let mut t = PrefixTree::<u32>::pt4_32();
        t.insert(1000, 1);
        t.insert(1001, 2);
        t.insert(999, 3);
        let got: Vec<u64> = t.range(1000, 1000).map(|(k, _)| k).collect();
        assert_eq!(got, vec![1000]);
    }

    #[test]
    fn min_max_keys() {
        let (t, m) = build_pair(2000, 4);
        assert_eq!(t.min_key(), m.keys().next().copied());
        assert_eq!(t.max_key(), m.keys().next_back().copied());
    }

    #[test]
    fn range_on_64bit_composite_keys() {
        let mut t = PrefixTree::<u32>::pt4_64();
        let mut keys = Vec::new();
        for hi in [1u64, 2, 3] {
            for lo in [10u64, 20, 30] {
                let k = (hi << 32) | lo;
                t.insert(k, 0);
                keys.push(k);
            }
        }
        // All keys with hi = 2.
        let got: Vec<u64> = t.range(2 << 32, (3 << 32) - 1).map(|(k, _)| k).collect();
        assert_eq!(got, vec![(2 << 32) | 10, (2 << 32) | 20, (2 << 32) | 30]);
    }
}
