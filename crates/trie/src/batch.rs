//! Batch processing on prefix trees (§2.3, Algorithm 1).
//!
//! Once a tree outgrows the CPU caches, lookups are dominated by dependent
//! memory accesses. Processing a *batch* of operations level-synchronously
//! lets each round issue a software prefetch for every job's next node, so
//! by the time the round advances to the next level the nodes are already in
//! L1. QPPT's join and insert buffers feed these entry points.

use qppt_mem::prefetch::prefetch_read;

use crate::tree::{decode, PrefixTree, Slot, Values};

/// Per-job state for the level-synchronous descent.
#[derive(Debug, Clone, Copy)]
enum JobState {
    /// Descending; currently positioned on this node.
    AtNode(u32),
    /// Reached a content entry; key comparison happens next round (the
    /// content was prefetched when it was discovered).
    AtContent(u32),
    /// Finished with the content index (or `None` if the key is absent).
    Done(Option<u32>),
}

/// Outcome counters of a [`PrefixTree::batch_insert`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchInsertStats {
    /// Keys that were not present before.
    pub new_keys: usize,
    /// Values appended to already-present keys.
    pub appended: usize,
}

impl<V: Copy + Default> PrefixTree<V> {
    /// Looks up a batch of keys using the level-synchronous, prefetching
    /// descent of Algorithm 1. `out` receives `(job_index, values)` for every
    /// key that is present, in unspecified order.
    ///
    /// Equivalent to calling [`get`](Self::get) per key, but hides memory
    /// latency for batches larger than a handful of jobs.
    pub fn batch_get<'a>(&'a self, keys: &[u64], mut out: impl FnMut(usize, Values<'a, V>)) {
        for &k in keys {
            self.check_key(k);
        }
        let mut states: Vec<JobState> = vec![JobState::AtNode(0); keys.len()];
        let mut level: u32 = 0;
        let mut open = keys.len();
        while open > 0 {
            for (i, state) in states.iter_mut().enumerate() {
                match *state {
                    JobState::Done(_) => {}
                    JobState::AtContent(c) => {
                        let found = self.key_of(c) == keys[i];
                        *state = JobState::Done(found.then_some(c));
                        open -= 1;
                    }
                    JobState::AtNode(node) => {
                        let si = self.slot_index(node, self.cfg.fragment(keys[i], level));
                        match decode(self.slots[si]) {
                            Slot::Empty => {
                                *state = JobState::Done(None);
                                open -= 1;
                            }
                            Slot::Content(c) => {
                                prefetch_read(&self.contents[c as usize] as *const _);
                                *state = JobState::AtContent(c);
                            }
                            Slot::Node(n) => {
                                prefetch_read(&self.slots[self.slot_index(n, 0)] as *const u32);
                                *state = JobState::AtNode(n);
                            }
                        }
                    }
                }
            }
            level += 1;
        }
        for (i, state) in states.iter().enumerate() {
            if let JobState::Done(Some(c)) = state {
                out(i, self.values_of(*c));
            }
        }
    }

    /// Convenience wrapper over [`batch_get`](Self::batch_get) returning the
    /// first value per key (for unique indexes).
    pub fn batch_get_first(&self, keys: &[u64]) -> Vec<Option<V>> {
        let mut out = vec![None; keys.len()];
        self.batch_get(keys, |i, mut vs| {
            out[i] = vs.next().copied();
        });
        out
    }

    /// `true`/`false` presence per key, batched.
    pub fn batch_contains(&self, keys: &[u64]) -> Vec<bool> {
        let mut out = vec![false; keys.len()];
        self.batch_get(keys, |i, _| out[i] = true);
        out
    }

    /// Inserts a batch of `(key, value)` pairs (multimap semantics, same as
    /// [`insert`](Self::insert)) using a level-synchronous prefetching
    /// descent. Jobs that reach their terminal position (an empty bucket, a
    /// matching content, or a content to expand) complete immediately; the
    /// structural updates only ever *append* nodes and contents, so the
    /// cached positions of in-flight jobs stay valid.
    pub fn batch_insert(&mut self, pairs: &[(u64, V)]) -> BatchInsertStats {
        for &(k, _) in pairs {
            self.check_key(k);
        }
        let mut stats = BatchInsertStats::default();
        let mut states: Vec<JobState> = vec![JobState::AtNode(0); pairs.len()];
        let mut level: u32 = 0;
        let mut open = pairs.len();
        while open > 0 {
            for (i, state) in states.iter_mut().enumerate() {
                let (key, value) = pairs[i];
                match *state {
                    JobState::Done(_) => {}
                    JobState::AtContent(_) => unreachable!("insert jobs finish inline"),
                    JobState::AtNode(node) => {
                        let si = self.slot_index(node, self.cfg.fragment(key, level));
                        match decode(self.slots[si]) {
                            Slot::Empty | Slot::Content(_) => {
                                // Terminal: finish this job with the scalar
                                // path starting at the current position.
                                let before = self.len();
                                self.insert_from(node, level, key, value);
                                if self.len() > before {
                                    stats.new_keys += 1;
                                } else {
                                    stats.appended += 1;
                                }
                                *state = JobState::Done(None);
                                open -= 1;
                            }
                            Slot::Node(n) => {
                                prefetch_read(&self.slots[self.slot_index(n, 0)] as *const u32);
                                *state = JobState::AtNode(n);
                            }
                        }
                    }
                }
            }
            level += 1;
        }
        stats
    }

    /// Scalar insert resuming at `node`/`level` (used by the batch path).
    fn insert_from(&mut self, node: u32, level: u32, key: u64, value: V) {
        // Delegate to the normal path; it re-descends from the root, but the
        // upper path is hot in cache at this point (it was just traversed),
        // so the extra cost is a few L1 hits. Resuming mid-path would
        // duplicate the expansion logic for no measurable gain.
        let _ = (node, level);
        self.insert(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_mem::Xoshiro256StarStar;
    use std::collections::BTreeMap;

    #[test]
    fn batch_get_matches_scalar_get() {
        let mut t = PrefixTree::<u32>::pt4_32();
        let mut rng = Xoshiro256StarStar::new(10);
        let mut present = Vec::new();
        for i in 0..4000u32 {
            let k = rng.below(1 << 20);
            t.insert(k, i);
            present.push(k);
        }
        let mut probe: Vec<u64> = present[..1000].to_vec();
        for _ in 0..1000 {
            probe.push(rng.below(1 << 20)); // mix of hits and misses
        }
        let batched = t.batch_get_first(&probe);
        for (i, &k) in probe.iter().enumerate() {
            assert_eq!(batched[i], t.get_first(k), "key {k}");
        }
    }

    #[test]
    fn batch_get_empty_batch_and_empty_tree() {
        let t = PrefixTree::<u32>::pt4_32();
        assert!(t.batch_get_first(&[]).is_empty());
        assert_eq!(t.batch_get_first(&[1, 2, 3]), vec![None, None, None]);
    }

    #[test]
    fn batch_get_duplicates_in_batch() {
        let mut t = PrefixTree::<u32>::pt4_32();
        t.insert(5, 50);
        let got = t.batch_get_first(&[5, 5, 5, 6]);
        assert_eq!(got, vec![Some(50), Some(50), Some(50), None]);
    }

    #[test]
    fn batch_insert_equals_scalar_insert() {
        let mut rng = Xoshiro256StarStar::new(77);
        let pairs: Vec<(u64, u32)> = (0..5000u32).map(|i| (rng.below(1 << 14), i)).collect();

        let mut scalar = PrefixTree::<u32>::pt4_32();
        for &(k, v) in &pairs {
            scalar.insert(k, v);
        }
        let mut batched = PrefixTree::<u32>::pt4_32();
        let stats = batched.batch_insert(&pairs);

        assert_eq!(stats.new_keys + stats.appended, pairs.len());
        assert_eq!(batched.len(), scalar.len());
        assert_eq!(batched.total_values(), scalar.total_values());
        let a: Vec<(u64, Vec<u32>)> = scalar
            .iter()
            .map(|(k, v)| (k, v.copied().collect()))
            .collect();
        let b: Vec<(u64, Vec<u32>)> = batched
            .iter()
            .map(|(k, v)| (k, v.copied().collect()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn batch_insert_same_key_within_batch() {
        let mut t = PrefixTree::<u32>::pt4_32();
        let stats = t.batch_insert(&[(9, 1), (9, 2), (9, 3)]);
        assert_eq!(stats.new_keys, 1);
        assert_eq!(stats.appended, 2);
        let vals: Vec<u32> = t.get(9).unwrap().copied().collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn batch_contains_mixed() {
        let mut t = PrefixTree::<u32>::pt4_32();
        t.insert(1, 0);
        t.insert(100, 0);
        assert_eq!(
            t.batch_contains(&[1, 2, 100, 101]),
            vec![true, false, true, false]
        );
    }

    #[test]
    fn interleaved_batches_against_model() {
        let mut t = PrefixTree::<u32>::pt4_32();
        let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        let mut rng = Xoshiro256StarStar::new(3);
        for round in 0..10 {
            let pairs: Vec<(u64, u32)> = (0..500)
                .map(|i| (rng.below(4096), (round * 500 + i) as u32))
                .collect();
            t.batch_insert(&pairs);
            for &(k, v) in &pairs {
                model.entry(k).or_default().push(v);
            }
        }
        let got: Vec<(u64, Vec<u32>)> = t.iter().map(|(k, v)| (k, v.copied().collect())).collect();
        let expect: Vec<(u64, Vec<u32>)> = model.into_iter().collect();
        assert_eq!(got, expect);
    }
}
