//! Property-based model tests: the prefix tree must behave exactly like a
//! `BTreeMap<u64, Vec<V>>` under every operation mix, for every geometry.

use proptest::prelude::*;
use qppt_trie::{intersect, sync_scan, union_distinct, PrefixTree, TrieConfig};
use std::collections::{BTreeMap, BTreeSet};

fn build(cfg: TrieConfig, pairs: &[(u64, u32)]) -> (PrefixTree<u32>, BTreeMap<u64, Vec<u32>>) {
    let mut t = PrefixTree::new(cfg);
    let mut m: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    for &(k, v) in pairs {
        t.insert(k, v);
        m.entry(k).or_default().push(v);
    }
    (t, m)
}

fn key_strategy(bits: u8) -> impl Strategy<Value = u64> {
    let max = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    // Mix dense-low keys (forces deep expansion) with full-domain keys.
    prop_oneof![0..=max.min(1024), 0..=max, Just(0), Just(max)]
}

fn geometry() -> impl Strategy<Value = (u8, u8)> {
    prop_oneof![
        Just((32u8, 4u8)),
        Just((32, 8)),
        Just((32, 2)),
        Just((64, 4)),
        Just((64, 8)),
        Just((16, 1)),
        Just((32, 16)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lookup_matches_model(
        (bits, k) in geometry(),
        keys in prop::collection::vec(any::<u64>(), 0..400),
        probes in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let cfg = TrieConfig::new(bits, k).unwrap();
        let mask = cfg.key_limit().map(|l| l - 1).unwrap_or(u64::MAX);
        let pairs: Vec<(u64, u32)> = keys.iter().enumerate().map(|(i, &x)| (x & mask, i as u32)).collect();
        let (t, m) = build(cfg, &pairs);
        prop_assert_eq!(t.len(), m.len());
        for &(key, _) in &pairs {
            let got: Vec<u32> = t.get(key).unwrap().copied().collect();
            prop_assert_eq!(&got, &m[&key]);
        }
        for &p in &probes {
            let p = p & mask;
            prop_assert_eq!(t.contains_key(p), m.contains_key(&p));
        }
    }

    #[test]
    fn ordered_iteration_matches_model(
        (bits, k) in geometry(),
        keys in prop::collection::vec(any::<u64>(), 0..400),
    ) {
        let cfg = TrieConfig::new(bits, k).unwrap();
        let mask = cfg.key_limit().map(|l| l - 1).unwrap_or(u64::MAX);
        let pairs: Vec<(u64, u32)> = keys.iter().enumerate().map(|(i, &x)| (x & mask, i as u32)).collect();
        let (t, m) = build(cfg, &pairs);
        let got: Vec<(u64, Vec<u32>)> = t.iter().map(|(k, v)| (k, v.copied().collect())).collect();
        let expect: Vec<(u64, Vec<u32>)> = m.into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn range_matches_model(
        keys in prop::collection::vec(key_strategy(32), 0..300),
        lo in key_strategy(32),
        hi in key_strategy(32),
    ) {
        let cfg = TrieConfig::pt4_32();
        let pairs: Vec<(u64, u32)> = keys.iter().enumerate().map(|(i, &x)| (x, i as u32)).collect();
        let (t, m) = build(cfg, &pairs);
        let got: Vec<u64> = t.range(lo, hi).map(|(k, _)| k).collect();
        let expect: Vec<u64> = if lo <= hi {
            m.range(lo..=hi).map(|(&k, _)| k).collect()
        } else {
            Vec::new()
        };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn batched_equals_unbatched(
        keys in prop::collection::vec(key_strategy(32), 0..300),
        probes in prop::collection::vec(key_strategy(32), 0..100),
    ) {
        let cfg = TrieConfig::pt4_32();
        let pairs: Vec<(u64, u32)> = keys.iter().enumerate().map(|(i, &x)| (x, i as u32)).collect();

        let mut scalar = PrefixTree::<u32>::new(cfg);
        for &(k, v) in &pairs { scalar.insert(k, v); }
        let mut batched = PrefixTree::<u32>::new(cfg);
        batched.batch_insert(&pairs);

        let a: Vec<(u64, Vec<u32>)> = scalar.iter().map(|(k, v)| (k, v.copied().collect())).collect();
        let b: Vec<(u64, Vec<u32>)> = batched.iter().map(|(k, v)| (k, v.copied().collect())).collect();
        prop_assert_eq!(a, b);

        let bres = batched.batch_get_first(&probes);
        for (i, &p) in probes.iter().enumerate() {
            prop_assert_eq!(bres[i], scalar.get_first(p));
        }
    }

    #[test]
    fn insert_merge_equals_fold(
        pairs in prop::collection::vec((key_strategy(32), -100i64..100), 0..300),
    ) {
        let mut t = PrefixTree::<i64>::pt4_32();
        let mut m: BTreeMap<u64, i64> = BTreeMap::new();
        for &(k, v) in &pairs {
            t.insert_merge(k, v, |acc, v| *acc += v);
            *m.entry(k).or_insert(0) += v;
        }
        let got: Vec<(u64, i64)> = t.iter().map(|(k, mut v)| (k, *v.next().unwrap())).collect();
        let expect: Vec<(u64, i64)> = m.into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn sync_scan_is_sorted_intersection(
        a in prop::collection::vec(key_strategy(32), 0..250),
        b in prop::collection::vec(key_strategy(32), 0..250),
    ) {
        let cfg = TrieConfig::pt4_32();
        let (ta, _) = build(cfg, &a.iter().map(|&k| (k, 0u32)).collect::<Vec<_>>());
        let (tb, _) = build(cfg, &b.iter().map(|&k| (k, 0u32)).collect::<Vec<_>>());
        let sa: BTreeSet<u64> = a.into_iter().collect();
        let sb: BTreeSet<u64> = b.into_iter().collect();
        let expect: Vec<u64> = sa.intersection(&sb).copied().collect();
        let mut got = Vec::new();
        sync_scan(&ta, &tb, |k, _, _| got.push(k));
        prop_assert_eq!(&got, &expect);

        // Set operators agree with the model too.
        let inter = intersect(&ta, &tb);
        prop_assert_eq!(inter.keys().collect::<Vec<_>>(), expect);
        let uni = union_distinct(&ta, &tb);
        let expect_u: Vec<u64> = sa.union(&sb).copied().collect();
        prop_assert_eq!(uni.keys().collect::<Vec<_>>(), expect_u);
    }
}
