//! The CI smoke probe: connect to a running qppt-server, learn its
//! `sf`/`seed` from `INFO`, regenerate the same SSB instance locally, and
//! assert the served answers are byte-identical to the local sequential
//! engine's — named aliases *and* one ad-hoc `QUERY` (plus one
//! deliberately malformed `QUERY`, which must be a clean `ERR`). Exits
//! non-zero on any mismatch.
//!
//! ```text
//! cargo run --release --bin qppt-smoke -- --addr 127.0.0.1:7878 --shutdown
//! ```
//!
//! `--router` runs a self-contained sharded smoke instead: it spawns two
//! in-process `qppt-server` shards plus a `qppt-router` on loopback, then
//! drives the same named + ad-hoc + malformed probes through the router —
//! the merged answers must be byte-identical to the same sequential
//! oracle (`--addr`/`--shutdown` are ignored in this mode).
//!
//! Router mode also probes the routed result cache: a repeat of a named
//! query must answer from the merged-result tier, and `CACHE STATS` must
//! report it under the distinct `router_result_*`/`router_partial_*`
//! fields.
//!
//! `--chaos` (implies `--router`) upgrades the fleet to two replicas per
//! range — each shard engine served on two listeners — then kills one
//! replica of range 0 mid-run and repeats every probe twice: once with
//! `cache=off` (bypassing the router tiers, so the scatter must fail over
//! to the sibling) and once plain (served warm from the router cache, to
//! which the kill is invisible). The probes must see **zero**
//! client-visible errors, and the router's own metrics must record ≥ 1
//! failover with exactly 3 replicas still live.
//!
//! Both modes end with a `METRICS` probe: the exposition must parse under
//! the strict Prometheus checker and count the queries this very smoke
//! just issued (in router mode: per-shard labels plus the summed
//! `shard="fleet"` samples and the router's own families). A server that
//! answers `ERR … --no-obs` skips the probe — that configuration has no
//! metrics by design.

use std::process::exit;
use std::time::Duration;

use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_server::QpptClient;
use qppt_ssb::{queries, SsbDb};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let shutdown = args.iter().any(|a| a == "--shutdown");
    let chaos = args.iter().any(|a| a == "--chaos");
    if chaos || args.iter().any(|a| a == "--router") {
        router_smoke(chaos);
        return;
    }

    eprintln!("smoke: connecting to {addr} (retrying up to 120s while the server warms up) …");
    let mut client = match QpptClient::connect_retry(&addr, Duration::from_secs(120)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("smoke: FAIL — cannot connect: {e}");
            exit(1);
        }
    };

    let info = client.info().expect("INFO answers");
    let get = |k: &str| {
        info.iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| panic!("INFO is missing {k}"))
    };
    let sf: f64 = get("sf").parse().expect("sf parses");
    let seed: u64 = get("seed").parse().expect("seed parses");
    eprintln!("smoke: server runs SSB sf={sf} seed={seed}; rebuilding locally for the oracle …");

    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(sf, seed);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).expect("indexes build");
    }
    let engine = QpptEngine::new(&ssb.db);

    let mut failed = run_probes(&mut client, &engine, &opts, &[]);
    failed += metrics_probe(&mut client, None);

    if shutdown {
        eprintln!("smoke: sending SHUTDOWN");
        let _ = client.shutdown();
    }
    if failed > 0 {
        eprintln!("smoke: FAIL ({failed} mismatches)");
        exit(1);
    }
    eprintln!("smoke: PASS");
}

/// The self-contained sharded smoke (`--router`): two in-process shards
/// plus a router on loopback, probed through the router against the same
/// sequential single-node oracle. With `chaos`, each shard is served on
/// two listeners (a two-replica range) and the probe set is repeated
/// after one replica is killed mid-run.
fn router_smoke(chaos: bool) {
    use qppt_par::WorkerPool;
    use qppt_router::{serve_router, Router, RouterConfig, RouterObs};
    use qppt_server::{serve, ServeEngine, ServeObs};
    use std::sync::Arc;

    let (sf, seed) = (0.01, 42);
    let replicas = if chaos { 2 } else { 1 };
    eprintln!(
        "smoke: router mode — 2 shards × {replicas} replica(s) + router on loopback \
         (sf={sf} seed={seed}) …"
    );
    let pool = WorkerPool::new(2, 8);
    let defaults = PlanOptions::default()
        .with_parallelism(2)
        .with_par_index_build(true);
    let mut shard_handles: Vec<Vec<qppt_server::ServerHandle>> = Vec::new();
    let mut fleet: Vec<Vec<String>> = Vec::new();
    for i in 0..2 {
        // Replicas of a range are the same engine served on distinct
        // listeners — byte-identical answers by construction, which is
        // exactly the contract real replicas (same --shard i/n, same
        // --sf/--seed) provide.
        let engine = Arc::new(
            ServeEngine::with_ssb_shard(sf, seed, pool.clone(), defaults, i, 2)
                .expect("shard engine builds")
                .with_obs(ServeObs::new(None)),
        );
        let mut handles = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..replicas {
            let h = serve(Arc::clone(&engine), "127.0.0.1:0").expect("shard binds");
            addrs.push(h.addr().to_string());
            handles.push(h);
        }
        fleet.push(addrs);
        shard_handles.push(handles);
    }
    let router =
        Arc::new(Router::new(RouterConfig::with_fleet(fleet)).with_obs(RouterObs::new(2, None)));
    router
        .wait_for_shards(Duration::from_secs(30))
        .expect("shards answer PING");
    let rh = serve_router(Arc::clone(&router), "127.0.0.1:0").expect("router binds");

    // The oracle is the *full* unsharded instance on the sequential engine.
    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(sf, seed);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).expect("indexes build");
    }
    let engine = QpptEngine::new(&ssb.db);

    let mut client = QpptClient::connect_retry(&rh.addr().to_string(), Duration::from_secs(30))
        .expect("router reachable");
    let mut failed = 0usize;
    let info = client.info().expect("router INFO answers");
    match info
        .iter()
        .find(|(k, _)| k == "shards")
        .map(|(_, v)| v.as_str())
    {
        Some("2") => eprintln!("smoke: router INFO OK — shards=2"),
        other => {
            eprintln!("smoke: FAIL — router INFO shards={other:?}, want 2");
            failed += 1;
        }
    }
    failed += run_probes(&mut client, &engine, &opts, &[]);
    failed += metrics_probe(&mut client, Some(2));
    failed += router_cache_probe(&mut client, &engine, &opts);

    if chaos {
        // Kill one replica of range 0 mid-run. Uncached probes first
        // (`cache=off` bypasses the router tiers, so they scatter into the
        // half-dead pool and must fail over), then the plain probe set
        // (served warm from the router cache — the kill is invisible to
        // it). Every probe must see zero client-visible errors.
        eprintln!(
            "smoke: chaos — killing shard 0 replica 0, repeating every probe \
             (uncached, then cached) …"
        );
        shard_handles[0].remove(0).stop();
        failed += run_probes(&mut client, &engine, &opts, &[("cache", "off")]);
        failed += run_probes(&mut client, &engine, &opts, &[]);
        let obs = router.obs().expect("router obs attached");
        let expo = qppt_obs::parse_exposition(&obs.render()).expect("router exposition parses");
        match expo.value("qppt_router_failovers_total", &[]) {
            Some(v) if v >= 1 => eprintln!("smoke: chaos failovers OK ({v})"),
            other => {
                eprintln!("smoke: chaos FAIL — qppt_router_failovers_total is {other:?}, want ≥ 1");
                failed += 1;
            }
        }
        match expo.value("qppt_router_replicas_live", &[]) {
            Some(3) => eprintln!("smoke: chaos replicas_live OK (3)"),
            other => {
                eprintln!("smoke: chaos FAIL — qppt_router_replicas_live is {other:?}, want 3");
                failed += 1;
            }
        }
    }

    eprintln!("smoke: sending SHUTDOWN (router only; shards are stopped directly)");
    let _ = client.shutdown();
    rh.join();
    for range in shard_handles {
        for h in range {
            h.stop();
        }
    }
    pool.shutdown();
    if failed > 0 {
        eprintln!("smoke: FAIL ({failed} mismatches)");
        exit(1);
    }
    eprintln!(
        "smoke: PASS (router{})",
        if chaos { " + chaos" } else { "" }
    );
}

/// The routed-caching probe: a repeat of a named query the probe set
/// already ran must answer from the router's merged-result tier —
/// byte-identical to the oracle, with `CACHE STATS` reporting the hit
/// under the distinct `router_result_*`/`router_partial_*` fields (never
/// summed into the engine tiers). Returns the number of failures.
fn router_cache_probe(client: &mut QpptClient, engine: &QpptEngine, opts: &PlanOptions) -> usize {
    let expected = engine
        .run(&queries::q2_3(), opts)
        .expect("sequential oracle runs");
    match client.run("q2.3", &[("parallelism", "2")]) {
        Ok(served) if served.result == expected => {
            eprintln!(
                "smoke: warm q2.3 OK — byte-identical repeat (router total {} µs)",
                served.stats.total_micros
            );
        }
        other => {
            eprintln!("smoke: warm q2.3 FAIL — {other:?}");
            return 1;
        }
    }
    let stats = match client.cache_stats() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smoke: CACHE STATS FAIL — {e}");
            return 1;
        }
    };
    let field = |key: &str| -> Option<i64> {
        stats
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
    };
    let mut failed = 0usize;
    for (key, want_at_least) in [
        ("router_result_hits", 1),
        ("router_result_misses", 1),
        ("router_partial_misses", 1),
        ("router_partial_hits", 0),
    ] {
        match field(key) {
            Some(v) if v >= want_at_least => {
                eprintln!("smoke: CACHE STATS {key} OK ({v})");
            }
            other => {
                eprintln!("smoke: CACHE STATS FAIL — {key} is {other:?}, want ≥ {want_at_least}");
                failed += 1;
            }
        }
    }
    failed
}

/// The `METRICS` probe: the exposition must parse under the strict
/// Prometheus checker and count the ≥ 3 named `RUN`s `run_probes` just
/// issued. In router mode (`shards = Some(n)`) that count must appear per
/// shard and the `shard="fleet"` sample must equal the shard sum, with
/// the router's own `qppt_router_*` families alongside. A server built
/// with `--no-obs` answers a structured `ERR` — reported as a skip, not a
/// failure. Returns the number of failures.
fn metrics_probe(client: &mut QpptClient, shards: Option<usize>) -> usize {
    let text = match client.metrics() {
        Ok(t) => t,
        Err(qppt_server::ClientError::Server(msg)) if msg.contains("--no-obs") => {
            eprintln!("smoke: METRICS skipped — server runs without observability ({msg})");
            return 0;
        }
        Err(e) => {
            eprintln!("smoke: METRICS FAIL — {e}");
            return 1;
        }
    };
    let expo = match qppt_obs::parse_exposition(&text) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("smoke: METRICS FAIL — exposition does not parse: {e}");
            return 1;
        }
    };
    let mut failed = 0usize;
    let mut check = |what: &str, got: Option<i64>, ok: &dyn Fn(i64) -> bool| match got {
        Some(v) if ok(v) => eprintln!("smoke: METRICS {what} OK ({v})"),
        other => {
            eprintln!("smoke: METRICS FAIL — {what} is {other:?}");
            failed += 1;
        }
    };
    match shards {
        None => {
            // `--addr` may point at a router rather than a server; a merged
            // exposition labels every shard sample, so fall back to the
            // `shard="fleet"` sums when the plain samples are absent.
            check(
                "qppt_requests_total{verb=RUN}",
                expo.value("qppt_requests_total", &[("verb", "RUN")])
                    .or_else(|| {
                        expo.value(
                            "qppt_requests_total",
                            &[("shard", "fleet"), ("verb", "RUN")],
                        )
                    }),
                &|v| v >= 3,
            );
            check(
                "qppt_uptime_seconds",
                expo.value("qppt_uptime_seconds", &[])
                    .or_else(|| expo.value("qppt_uptime_seconds", &[("shard", "fleet")])),
                &|v| v >= 0,
            );
        }
        Some(n) => {
            let per_shard: Vec<Option<i64>> = (0..n)
                .map(|i| {
                    expo.value(
                        "qppt_requests_total",
                        &[("shard", &i.to_string()), ("verb", "RUN")],
                    )
                })
                .collect();
            for (i, got) in per_shard.iter().enumerate() {
                check(
                    &format!("qppt_requests_total{{shard={i},verb=RUN}}"),
                    *got,
                    &|v| v >= 3,
                );
            }
            let sum: Option<i64> = per_shard.into_iter().sum();
            check(
                "qppt_requests_total{shard=fleet,verb=RUN}",
                expo.value(
                    "qppt_requests_total",
                    &[("shard", "fleet"), ("verb", "RUN")],
                ),
                &|v| Some(v) == sum,
            );
            check(
                "qppt_router_requests_total{verb=RUN}",
                expo.value("qppt_router_requests_total", &[("verb", "RUN")]),
                &|v| v >= 3,
            );
            check(
                "qppt_router_merge_micros_count",
                expo.value("qppt_router_merge_micros_count", &[]),
                &|v| v >= 3,
            );
        }
    }
    failed
}

/// The shared probe set: three named aliases, one ad-hoc `QUERY`, one
/// deliberately malformed `QUERY` — all checked against the sequential
/// oracle. Returns the number of failures.
fn run_probes(
    client: &mut QpptClient,
    engine: &QpptEngine,
    opts: &PlanOptions,
    extra: &[(&str, &str)],
) -> usize {
    let mut failed = 0usize;
    for (name, spec) in [
        ("q1.1", queries::q1_1()),
        ("q2.3", queries::q2_3()),
        ("q4.1", queries::q4_1()),
    ] {
        let expected = engine.run(&spec, opts).expect("sequential oracle runs");
        let mut options = vec![("parallelism", "2")];
        options.extend_from_slice(extra);
        match client.run(name, &options) {
            Ok(served) if served.result == expected => {
                eprintln!(
                    "smoke: {name} OK — {} rows byte-identical (server total {} µs)",
                    expected.rows.len(),
                    served.stats.total_micros
                );
            }
            Ok(served) => {
                eprintln!(
                    "smoke: {name} MISMATCH — served {} rows, expected {}",
                    served.result.rows.len(),
                    expected.rows.len()
                );
                failed += 1;
            }
            Err(e) => {
                eprintln!("smoke: {name} FAIL — {e}");
                failed += 1;
            }
        }
    }

    // Ad-hoc frontend probe: a query the server has no name for, written
    // in the qppt-query language, checked against the locally parsed spec.
    let adhoc_text = "fact=lineorder \
         dim=supplier[join=s_suppkey:lo_suppkey;s_region='ASIA';carry=s_nation] \
         dim=date[join=d_datekey:lo_orderdate;d_year between 1992 and 1997;carry=d_year] \
         agg=sum(lo_revenue):revenue group=supplier.s_nation,date.d_year \
         order=group:1,agg:0:desc id=smoke-adhoc";
    let adhoc_spec = qppt_query::parse(adhoc_text).expect("smoke ad-hoc text parses");
    let expected = engine.run(&adhoc_spec, opts).expect("ad-hoc oracle runs");
    let mut options = vec![("parallelism", "2")];
    options.extend_from_slice(extra);
    match client.query(adhoc_text, &options) {
        Ok(served) if served.result == expected => {
            eprintln!(
                "smoke: ad-hoc QUERY OK — {} rows byte-identical (server total {} µs)",
                expected.rows.len(),
                served.stats.total_micros
            );
        }
        Ok(served) => {
            eprintln!(
                "smoke: ad-hoc QUERY MISMATCH — served {} rows, expected {}",
                served.result.rows.len(),
                expected.rows.len()
            );
            failed += 1;
        }
        Err(e) => {
            eprintln!("smoke: ad-hoc QUERY FAIL — {e}");
            failed += 1;
        }
    }

    // And a deliberately malformed QUERY must come back as a structured
    // ERR on a connection that keeps serving.
    match client.query(
        "fact=lineorder dim=date[join=d_datekey:lo_orderdate;d_frob=1] agg=sum(lo_revenue):r",
        &[],
    ) {
        Err(qppt_server::ClientError::Server(msg)) => {
            eprintln!("smoke: malformed QUERY OK — ERR {msg}");
            if client.ping().is_err() {
                eprintln!("smoke: FAIL — connection died after malformed QUERY");
                failed += 1;
            }
        }
        other => {
            eprintln!("smoke: malformed QUERY FAIL — want server ERR, got {other:?}");
            failed += 1;
        }
    }

    failed
}
