//! The qppt-router binary: front a replicated fleet of `qppt-server`
//! shards and serve the same line protocol with scatter/gather semantics
//! and replica failover.
//!
//! ```text
//! # shard 0 and shard 1 of a 2-range deployment (same sf and seed!),
//! # each range served by two replicas
//! cargo run --release --bin qppt-server -- --addr 127.0.0.1:7878 --shard 0/2 --sf 0.05
//! cargo run --release --bin qppt-server -- --addr 127.0.0.1:7879 --shard 0/2 --replica 1 --sf 0.05
//! cargo run --release --bin qppt-server -- --addr 127.0.0.1:7888 --shard 1/2 --sf 0.05
//! cargo run --release --bin qppt-server -- --addr 127.0.0.1:7889 --shard 1/2 --replica 1 --sf 0.05
//!
//! # the router in front of them
//! cargo run --release --bin qppt-router -- --addr 127.0.0.1:7900 \
//!     --fleet 'range0=127.0.0.1:7878,127.0.0.1:7879;range1=127.0.0.1:7888,127.0.0.1:7889'
//! ```
//!
//! `--fleet` lists replica addresses per range (`;` between ranges, `,`
//! between replicas, optional `range<i>=` labels) **in range order** —
//! every replica of range *i* must be a server started with `--shard
//! i/n`. The older `--shards a,b,c` flag is still accepted as shorthand
//! for a single-replica fleet. `--wait-secs` (default 120) bounds how
//! long the router waits at startup for the fleet to answer `PING`; it
//! starts as long as every range has at least one live replica.
//! `SHUTDOWN` stops the router only — the shards keep running.
//!
//! Failover tunables: `--retry-budget` caps failover attempts per
//! request; `--retry-backoff-ms`/`--retry-backoff-cap-ms` shape the
//! capped-exponential jittered delay between attempts;
//! `--probe-interval-ms`/`--probe-backoff-cap-ms` pace the background
//! health prober that flips suspect replicas back to live.
//!
//! Observability: the `METRICS` verb serves the merged fleet exposition
//! (every range's families labeled `shard="<i>"`, summed `shard="fleet"`
//! samples, plus the router's own `qppt_router_*` families — including
//! `qppt_router_failovers_total`, `qppt_router_replicas_live`, and the
//! per-replica read-balancing spread `qppt_router_replica_requests_total`)
//! unless `--no-obs` disables the instrumentation; `--slow-query-micros
//! <n>` records routed queries at or above *n* µs wall time in the
//! slow-query ring served by `METRICS SLOW` (0 = off);
//! `--trace-sample-rate <p>` promotes every ⌈1/p⌉-th organic
//! (client-untraced) `RUN`/`QUERY` to `trace=on` deterministically
//! (0 = off, 1 traces everything).
//!
//! Routed caching: the router keeps a two-tier result cache — merged
//! results keyed on (query, options, topology generation, per-shard
//! version vector) and per-range partial aggregates — so warm repeats
//! answer without touching the fleet and a single-shard write only
//! re-fetches that shard's range. `--cache-probe-interval-ms <n>`
//! (default 500) bounds staleness: version vectors older than *n* ms are
//! re-probed (one `INFO` per range) before a cached entry is served on
//! them. `--cache-result-mb`/`--cache-partial-mb` size the two tiers
//! (defaults 32/64 MiB); `--no-router-cache` disables both tiers (every
//! request scatters). The routed `CACHE STATS` verb reports the tiers as
//! `router_result_*`/`router_partial_*` fields and `CACHE CLEAR` drops
//! them along with the fleet's engine tiers.

use std::sync::Arc;
use std::time::Duration;

use qppt_router::{parse_fleet, serve_router, Router, RouterConfig, RouterObs};

fn arg<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad value for {flag}: {v}"))
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr: String = arg(&args, "--addr", "127.0.0.1:7900".to_string());
    let fleet_flag: String = arg(&args, "--fleet", String::new());
    let shards_flag: String = arg(&args, "--shards", String::new());
    let connect_timeout: f64 = arg(&args, "--connect-timeout-secs", 5.0);
    let read_timeout: f64 = arg(&args, "--read-timeout-secs", 60.0);
    let conns_per_shard: usize = arg(&args, "--conns-per-shard", 4);
    let retry_budget: usize = arg(&args, "--retry-budget", 4);
    let retry_backoff_ms: u64 = arg(&args, "--retry-backoff-ms", 10);
    let retry_backoff_cap_ms: u64 = arg(&args, "--retry-backoff-cap-ms", 500);
    let probe_interval_ms: u64 = arg(&args, "--probe-interval-ms", 200);
    let probe_backoff_cap_ms: u64 = arg(&args, "--probe-backoff-cap-ms", 5_000);
    let wait_secs: f64 = arg(&args, "--wait-secs", 120.0);
    let no_obs = args.iter().any(|a| a == "--no-obs");
    let slow_query_micros: u64 = arg(&args, "--slow-query-micros", 0);
    let trace_sample_rate: f64 = arg(&args, "--trace-sample-rate", 0.0);
    let no_router_cache = args.iter().any(|a| a == "--no-router-cache");
    let cache_probe_interval_ms: u64 = arg(&args, "--cache-probe-interval-ms", 500);
    let cache_result_mb: usize = arg(&args, "--cache-result-mb", 32);
    let cache_partial_mb: usize = arg(&args, "--cache-partial-mb", 64);

    let fleet: Vec<Vec<String>> = if !fleet_flag.is_empty() {
        match parse_fleet(&fleet_flag) {
            Ok(fleet) => fleet,
            Err(e) => {
                eprintln!("qppt-router: bad --fleet spec: {e}");
                std::process::exit(2);
            }
        }
    } else {
        // --shards a,b,c == a single-replica fleet, one range per address.
        shards_flag
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| vec![s.to_string()])
            .collect()
    };
    if fleet.is_empty() {
        eprintln!(
            "qppt-router: --fleet (range0=a,b;range1=c,d) or --shards (a,b,c) is required, \
             addresses in range order"
        );
        std::process::exit(2);
    }

    let mut config = RouterConfig::with_fleet(fleet.clone());
    config.connect_timeout = Duration::from_secs_f64(connect_timeout);
    config.read_timeout = Duration::from_secs_f64(read_timeout);
    config.conns_per_shard = conns_per_shard;
    config.retry_budget = retry_budget;
    config.retry_backoff = Duration::from_millis(retry_backoff_ms);
    config.retry_backoff_cap = Duration::from_millis(retry_backoff_cap_ms);
    config.probe_interval = Duration::from_millis(probe_interval_ms);
    config.probe_backoff_cap = Duration::from_millis(probe_backoff_cap_ms);
    config.trace_sample_rate = trace_sample_rate;
    config.cache.enabled = !no_router_cache;
    config.cache.probe_interval = Duration::from_millis(cache_probe_interval_ms);
    config.cache.result_budget = cache_result_mb << 20;
    config.cache.partial_budget = cache_partial_mb << 20;
    let ranges = fleet.len();
    let replicas: usize = fleet.iter().map(Vec::len).sum();
    let mut router = Router::new(config);
    if !no_obs {
        router = router.with_obs(RouterObs::new(
            ranges,
            (slow_query_micros > 0).then_some(slow_query_micros),
        ));
    }
    let router = Arc::new(router);

    eprintln!(
        "qppt-router: waiting up to {wait_secs}s for {replicas} replica(s) across {ranges} \
         range(s) to answer PING …"
    );
    if let Err(e) = router.wait_for_shards(Duration::from_secs_f64(wait_secs)) {
        eprintln!("qppt-router: {e}");
        std::process::exit(1);
    }

    let server = serve_router(router, &addr).expect("bind listener");
    println!(
        "qppt-router listening on {} over {ranges} range(s) / {replicas} replica(s): {}",
        server.addr(),
        fleet
            .iter()
            .map(|r| r.join(","))
            .collect::<Vec<_>>()
            .join("; ")
    );
    // Runs until a client sends SHUTDOWN (router only; shards stay up).
    server.join();
    eprintln!("qppt-router stopped");
}
