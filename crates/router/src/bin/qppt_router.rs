//! The qppt-router binary: front an ordered fleet of `qppt-server` shards
//! and serve the same line protocol with scatter/gather semantics.
//!
//! ```text
//! # shard 0 and shard 1 of a 2-node deployment (same sf and seed!)
//! cargo run --release --bin qppt-server -- --addr 127.0.0.1:7878 --shard 0/2 --sf 0.05
//! cargo run --release --bin qppt-server -- --addr 127.0.0.1:7879 --shard 1/2 --sf 0.05
//!
//! # the router in front of them
//! cargo run --release --bin qppt-router -- \
//!     --addr 127.0.0.1:7900 --shards 127.0.0.1:7878,127.0.0.1:7879
//! ```
//!
//! `--shards` lists the shard addresses **in shard order** (entry *i* must
//! be the server started with `--shard i/n`). `--wait-secs` (default 120)
//! bounds how long the router waits at startup for every shard to answer
//! `PING` before serving. `SHUTDOWN` stops the router only — the shards
//! keep running.
//!
//! Observability: the `METRICS` verb serves the merged fleet exposition
//! (every shard's families labeled `shard="<i>"`, summed `shard="fleet"`
//! samples, plus the router's own `qppt_router_*` families) unless
//! `--no-obs` disables the instrumentation; `--slow-query-micros <n>`
//! logs routed queries at or above *n* µs wall time to stderr (0 = off).

use std::sync::Arc;
use std::time::Duration;

use qppt_router::{serve_router, Router, RouterConfig, RouterObs};

fn arg<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad value for {flag}: {v}"))
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr: String = arg(&args, "--addr", "127.0.0.1:7900".to_string());
    let shards_flag: String = arg(&args, "--shards", String::new());
    let connect_timeout: f64 = arg(&args, "--connect-timeout-secs", 5.0);
    let read_timeout: f64 = arg(&args, "--read-timeout-secs", 60.0);
    let conns_per_shard: usize = arg(&args, "--conns-per-shard", 4);
    let wait_secs: f64 = arg(&args, "--wait-secs", 120.0);
    let no_obs = args.iter().any(|a| a == "--no-obs");
    let slow_query_micros: u64 = arg(&args, "--slow-query-micros", 0);

    let shard_addrs: Vec<String> = shards_flag
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if shard_addrs.is_empty() {
        eprintln!(
            "qppt-router: --shards is required (comma-separated shard addresses in shard order)"
        );
        std::process::exit(2);
    }

    let mut config = RouterConfig::new(shard_addrs.clone());
    config.connect_timeout = Duration::from_secs_f64(connect_timeout);
    config.read_timeout = Duration::from_secs_f64(read_timeout);
    config.conns_per_shard = conns_per_shard;
    let mut router = Router::new(config);
    if !no_obs {
        router = router.with_obs(RouterObs::new(
            shard_addrs.len(),
            (slow_query_micros > 0).then_some(slow_query_micros),
        ));
    }
    let router = Arc::new(router);

    eprintln!(
        "qppt-router: waiting up to {wait_secs}s for {} shard(s) to answer PING …",
        shard_addrs.len()
    );
    if let Err(e) = router.wait_for_shards(Duration::from_secs_f64(wait_secs)) {
        eprintln!("qppt-router: {e}");
        std::process::exit(1);
    }

    let server = serve_router(router, &addr).expect("bind listener");
    println!(
        "qppt-router listening on {} over {} shard(s): {}",
        server.addr(),
        shard_addrs.len(),
        shard_addrs.join(", ")
    );
    // Runs until a client sends SHUTDOWN (router only; shards stay up).
    server.join();
    eprintln!("qppt-router stopped");
}
