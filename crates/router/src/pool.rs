//! Pooled persistent connections to one replica.
//!
//! Each [`ShardPool`] keeps a small stack of idle, already-connected
//! protocol connections to its replica. A request checks one out (or
//! dials a fresh one under the connect timeout), and checks it back in
//! **only** after the response was fully drained off the stream. Any
//! other outcome — transport error, protocol error, even a shard `ERR`
//! status — drops the connection: under fault injection an `ERR` line
//! proves nothing about what else is buffered behind it, and a
//! desynchronized stream re-pooled once would poison an arbitrary later
//! request. Dropping is cheap (the next checkout dials fresh); a poisoned
//! exchange is not.
//!
//! [`ShardPool::checkout`] reports whether the connection came from the
//! idle stack. The failover path treats a failure on a *reused*
//! connection as possibly-stale (the replica may have restarted since the
//! conn was pooled) and grants the same replica one fresh-dial retry
//! before convicting it as suspect; a failure on a *fresh* connection is
//! evidence against the replica itself.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

use qppt_server::protocol::{read_status, ClientError};

/// One persistent protocol connection to a replica.
#[derive(Debug)]
pub(crate) struct ShardConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ShardConn {
    fn dial(addr: &str, connect_timeout: Duration, read_timeout: Duration) -> io::Result<Self> {
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolves empty"))?;
        let stream = TcpStream::connect_timeout(&sock, connect_timeout)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request line.
    pub(crate) fn send_line(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Reads the response status line (`OK <text>` → text, `ERR <msg>` →
    /// [`ClientError::Server`]). A socket read timeout surfaces as
    /// [`ClientError::Io`], which the router maps to replica failure.
    pub(crate) fn read_status(&mut self) -> Result<String, ClientError> {
        read_status(&mut self.reader)
    }

    /// The buffered reader, for body-reading protocol helpers.
    pub(crate) fn reader(&mut self) -> &mut impl BufRead {
        &mut self.reader
    }
}

/// The connection pool of one replica: its address plus a bounded stack of
/// idle connections.
#[derive(Debug)]
pub(crate) struct ShardPool {
    addr: String,
    idle: Mutex<Vec<ShardConn>>,
    cap: usize,
    connect_timeout: Duration,
    read_timeout: Duration,
}

impl ShardPool {
    pub(crate) fn new(
        addr: String,
        cap: usize,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> Self {
        Self {
            addr,
            idle: Mutex::new(Vec::new()),
            cap,
            connect_timeout,
            read_timeout,
        }
    }

    pub(crate) fn addr(&self) -> &str {
        &self.addr
    }

    /// An idle connection if one exists (`reused == true`), else a fresh
    /// dial (`reused == false`).
    pub(crate) fn checkout(&self) -> io::Result<(ShardConn, bool)> {
        let reused = self.idle.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match reused {
            Some(conn) => Ok((conn, true)),
            None => self.dial().map(|c| (c, false)),
        }
    }

    /// Always a fresh dial — the retry path, after [`clear`](Self::clear).
    pub(crate) fn dial(&self) -> io::Result<ShardConn> {
        ShardConn::dial(&self.addr, self.connect_timeout, self.read_timeout)
    }

    /// Returns a connection whose response was fully drained. Callers must
    /// **drop** (not check in) a connection after any incomplete exchange,
    /// including a shard `ERR` — see the module docs.
    pub(crate) fn checkin(&self, conn: ShardConn) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        if idle.len() < self.cap {
            idle.push(conn);
        }
    }

    /// Drops every idle connection (they may be half-dead after a replica
    /// restart); the next checkout dials fresh.
    pub(crate) fn clear(&self) {
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}
