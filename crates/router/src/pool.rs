//! Pooled persistent connections to one shard.
//!
//! Each [`ShardPool`] keeps a small stack of idle, already-connected
//! protocol connections to its shard. A request checks one out (or dials a
//! fresh one under [`RouterConfig::connect_timeout`]), and checks it back
//! in only after a *complete* response was consumed — a connection that
//! failed mid-exchange is dropped, never reused, so a desynchronized
//! stream can never poison a later request. [`ShardPool::clear`] empties
//! the idle stack, which is how the router forces fresh dials on its one
//! bounded retry after a shard came back from a restart.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

use qppt_server::protocol::{read_status, ClientError};

/// One persistent protocol connection to a shard.
#[derive(Debug)]
pub(crate) struct ShardConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ShardConn {
    fn dial(addr: &str, connect_timeout: Duration, read_timeout: Duration) -> io::Result<Self> {
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolves empty"))?;
        let stream = TcpStream::connect_timeout(&sock, connect_timeout)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request line.
    pub(crate) fn send_line(&mut self, line: &str) -> io::Result<()> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Reads the response status line (`OK <text>` → text, `ERR <msg>` →
    /// [`ClientError::Server`]). A socket read timeout surfaces as
    /// [`ClientError::Io`], which the router maps to shard-unavailable.
    pub(crate) fn read_status(&mut self) -> Result<String, ClientError> {
        read_status(&mut self.reader)
    }

    /// The buffered reader, for body-reading protocol helpers.
    pub(crate) fn reader(&mut self) -> &mut impl BufRead {
        &mut self.reader
    }
}

/// The connection pool of one shard: its address plus a bounded stack of
/// idle connections.
#[derive(Debug)]
pub(crate) struct ShardPool {
    addr: String,
    idle: Mutex<Vec<ShardConn>>,
    cap: usize,
    connect_timeout: Duration,
    read_timeout: Duration,
}

impl ShardPool {
    pub(crate) fn new(
        addr: String,
        cap: usize,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> Self {
        Self {
            addr,
            idle: Mutex::new(Vec::new()),
            cap,
            connect_timeout,
            read_timeout,
        }
    }

    pub(crate) fn addr(&self) -> &str {
        &self.addr
    }

    /// An idle connection if one exists, else a fresh dial.
    pub(crate) fn checkout(&self) -> io::Result<ShardConn> {
        let reused = self.idle.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match reused {
            Some(conn) => Ok(conn),
            None => self.dial(),
        }
    }

    /// Always a fresh dial — the retry path, after [`clear`](Self::clear).
    pub(crate) fn dial(&self) -> io::Result<ShardConn> {
        ShardConn::dial(&self.addr, self.connect_timeout, self.read_timeout)
    }

    /// Returns a connection that finished a complete exchange.
    pub(crate) fn checkin(&self, conn: ShardConn) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        if idle.len() < self.cap {
            idle.push(conn);
        }
    }

    /// Drops every idle connection (they may be half-dead after a shard
    /// restart); the next checkout dials fresh.
    pub(crate) fn clear(&self) {
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}
