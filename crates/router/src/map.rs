//! The router-side shard map: per-range replica sets with health state,
//! swappable atomically between requests.
//!
//! A [`ShardMap`] assigns each `lo_orderdate` range an **ordered replica
//! set** — every replica of range *i* is a `qppt-server` started with
//! `--shard i/n`, so replicas serve identical fact partitions and their
//! partials merge byte-identically whichever one answers. The map is held
//! in a [`MapCell`], an ArcSwap-style cell: readers take a plain atomic
//! load on the hot path (no lock, no reference counting), writers swap in
//! a whole new map between requests and retire the old one to a graveyard
//! that lives as long as the cell, so an in-flight reader's borrow can
//! never dangle.
//!
//! Health state lives *inside* each [`Replica`] as lock-free atomics:
//! `live` flips to suspect on a fresh-connection failure, and the
//! background prober (see `router.rs`) flips it back after a successful
//! `PING` probe, on the capped-backoff schedule tracked here.
//!
//! [`Backoff`] is the retry/probe delay schedule: capped exponential with
//! equal jitter (each delay is drawn uniformly from `[d/2, d]` where
//! `d = min(cap, base·2^attempt)`), reset on success. The jitter source is
//! the repo's own deterministic [`SplitMix64`] — no new dependencies.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use qppt_mem::SplitMix64;

use crate::pool::ShardPool;

/// Parses a `--fleet` spec into per-range replica address lists.
///
/// Grammar: ranges separated by `;`, replicas separated by `,`, an
/// optional `range<i>=` prefix per range (which, when present, must match
/// the range's position):
///
/// ```text
/// range0=127.0.0.1:7878,127.0.0.1:7879;range1=127.0.0.1:7888,127.0.0.1:7889
/// 127.0.0.1:7878,127.0.0.1:7879;127.0.0.1:7888
/// ```
pub fn parse_fleet(spec: &str) -> Result<Vec<Vec<String>>, String> {
    let mut fleet = Vec::new();
    for (i, part) in spec
        .split(';')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .enumerate()
    {
        let addrs = match part.split_once('=') {
            Some((label, rest)) => {
                let idx: usize = label
                    .trim()
                    .strip_prefix("range")
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| format!("bad range label {label:?} (want range<i>=...)"))?;
                if idx != i {
                    return Err(format!("range label {label:?} out of order (position {i})"));
                }
                rest
            }
            None => part,
        };
        let replicas: Vec<String> = addrs
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(str::to_string)
            .collect();
        if replicas.is_empty() {
            return Err(format!("range {i} has no replica addresses"));
        }
        fleet.push(replicas);
    }
    if fleet.is_empty() {
        return Err("fleet spec names no ranges".to_string());
    }
    Ok(fleet)
}

/// One replica of one range: its connection pool plus lock-free health
/// state. Replicas start **live**; a fresh-connection failure marks them
/// suspect; the prober (or a successful organic exchange) marks them live
/// again.
#[derive(Debug)]
pub struct Replica {
    pool: ShardPool,
    live: AtomicBool,
    /// Consecutive probe failures since going suspect — the exponent of
    /// the probe backoff schedule.
    failures: AtomicU32,
    /// Earliest probe time, in microseconds since the owning map's epoch.
    next_probe_micros: AtomicU64,
}

impl Replica {
    fn new(pool: ShardPool) -> Self {
        Self {
            pool,
            live: AtomicBool::new(true),
            failures: AtomicU32::new(0),
            next_probe_micros: AtomicU64::new(0),
        }
    }

    /// The replica's wire address.
    pub fn addr(&self) -> &str {
        self.pool.addr()
    }

    /// Whether the replica is currently marked live.
    pub fn is_live(&self) -> bool {
        self.live.load(Ordering::Acquire)
    }

    pub(crate) fn pool(&self) -> &ShardPool {
        &self.pool
    }

    /// Marks the replica suspect after a fresh-connection failure and
    /// schedules its first probe `base` (jittered) from `now`. Returns
    /// `true` only on the live→suspect transition.
    pub(crate) fn mark_suspect(&self, now_micros: u64, base: Duration, cap: Duration) -> bool {
        let flipped = self.live.swap(false, Ordering::AcqRel);
        self.schedule_probe(now_micros, base, cap);
        flipped
    }

    /// Marks the replica live (probe or organic exchange succeeded),
    /// resetting the probe schedule. Returns `true` only on the
    /// suspect→live transition.
    pub(crate) fn mark_live(&self) -> bool {
        let flipped = !self.live.swap(true, Ordering::AcqRel);
        if flipped {
            self.failures.store(0, Ordering::Release);
        }
        flipped
    }

    /// Whether a suspect replica's next probe is due.
    pub(crate) fn probe_due(&self, now_micros: u64) -> bool {
        now_micros >= self.next_probe_micros.load(Ordering::Acquire)
    }

    /// Records a failed probe: bumps the consecutive-failure count and
    /// pushes the next probe out on the capped-backoff schedule.
    pub(crate) fn probe_failed(&self, now_micros: u64, base: Duration, cap: Duration) {
        self.schedule_probe(now_micros, base, cap);
    }

    fn schedule_probe(&self, now_micros: u64, base: Duration, cap: Duration) {
        let attempt = self.failures.fetch_add(1, Ordering::AcqRel);
        // Deterministic jitter keyed off the schedule state itself — no
        // wall-clock entropy needed.
        let mut rng = SplitMix64::new(now_micros ^ u64::from(attempt).wrapping_mul(0x9e37));
        let delay = jittered(exp_delay(base, cap, attempt), &mut rng);
        self.next_probe_micros.store(
            now_micros.saturating_add(delay.as_micros() as u64),
            Ordering::Release,
        );
    }
}

/// The ordered replica set owning one `lo_orderdate` range.
#[derive(Debug)]
pub struct RangeReplicas {
    replicas: Vec<Replica>,
    /// Monotonic pick counter for the round-robin read load-balancer:
    /// each [`preferred`](Self::preferred) call takes the next live
    /// replica in rotation, so read load spreads across the whole live
    /// set instead of pinning replica 0.
    rotation: AtomicU64,
}

impl RangeReplicas {
    /// Number of replicas in the set.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the set is empty (never true for a parsed fleet).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// The replica at ordinal `j` (panics when out of range).
    pub fn replica(&self, j: usize) -> &Replica {
        &self.replicas[j]
    }

    /// All replicas in replica order.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// The preferred replica for the next request: round-robin over the
    /// replicas currently marked **live** (each call advances the
    /// rotation), or replica 0 when every replica is suspect (someone has
    /// to absorb the recovery attempt). Suspect replicas drop out of the
    /// rotation immediately, so a convicted replica stops absorbing reads
    /// until the prober recovers it.
    pub fn preferred(&self) -> usize {
        let live: Vec<usize> = (0..self.replicas.len())
            .filter(|&j| self.replicas[j].is_live())
            .collect();
        if live.is_empty() {
            return 0;
        }
        let tick = self.rotation.fetch_add(1, Ordering::Relaxed);
        live[(tick % live.len() as u64) as usize]
    }

    /// Replicas currently marked live.
    pub fn live_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.is_live()).count()
    }
}

/// The whole fleet: one [`RangeReplicas`] per `lo_orderdate` range, plus
/// the epoch every probe deadline in the map is measured from.
#[derive(Debug)]
pub struct ShardMap {
    ranges: Vec<RangeReplicas>,
    epoch: Instant,
    /// Topology generation: 0 for the map a [`MapCell`] is created with,
    /// bumped by every [`MapCell::swap`]. Folded into router-side cache
    /// keys so a fleet reconfiguration invalidates every merged result
    /// composed under the old topology.
    generation: u64,
}

impl ShardMap {
    /// Builds the map from parsed fleet addresses, one connection pool per
    /// replica. Panics if `fleet` is empty — use [`parse_fleet`] first.
    pub(crate) fn from_fleet(
        fleet: &[Vec<String>],
        conns_per_replica: usize,
        connect_timeout: Duration,
        read_timeout: Duration,
    ) -> Self {
        assert!(!fleet.is_empty(), "fleet must name at least one range");
        let ranges = fleet
            .iter()
            .map(|addrs| {
                assert!(!addrs.is_empty(), "every range needs at least one replica");
                RangeReplicas {
                    replicas: addrs
                        .iter()
                        .map(|addr| {
                            Replica::new(ShardPool::new(
                                addr.clone(),
                                conns_per_replica,
                                connect_timeout,
                                read_timeout,
                            ))
                        })
                        .collect(),
                    rotation: AtomicU64::new(0),
                }
            })
            .collect();
        Self {
            ranges,
            epoch: Instant::now(),
            generation: 0,
        }
    }

    /// The topology generation this map was installed at (see the field
    /// docs; assigned by the owning [`MapCell`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of ranges (= the fleet's shard count `n` in `--shard i/n`).
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// The replica set of range `i` (panics when out of range).
    pub fn range(&self, i: usize) -> &RangeReplicas {
        &self.ranges[i]
    }

    /// All ranges in range order.
    pub fn ranges(&self) -> &[RangeReplicas] {
        &self.ranges
    }

    /// Replicas currently marked live, fleet-wide (the
    /// `qppt_router_replicas_live` gauge).
    pub fn live_replicas(&self) -> usize {
        self.ranges.iter().map(RangeReplicas::live_count).sum()
    }

    /// Total replicas in the map.
    pub fn total_replicas(&self) -> usize {
        self.ranges.iter().map(RangeReplicas::len).sum()
    }

    /// Microseconds since this map was built — the clock probe deadlines
    /// are measured on.
    pub(crate) fn now_micros(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Drops every idle pooled connection in the map (used when the map is
    /// retired by a swap — in-flight checkouts are unaffected, they own
    /// their connections).
    fn close_idle(&self) {
        for range in &self.ranges {
            for rep in &range.replicas {
                rep.pool.clear();
            }
        }
    }
}

/// An ArcSwap-style holder of the current [`ShardMap`].
///
/// `load` is the hot path: one atomic pointer read, no lock, no reference
/// count traffic. `swap` installs a new map between requests and retires
/// the old one into an append-only graveyard guarded by a mutex writers
/// alone touch. Retired maps are kept until the cell is dropped — swaps
/// are rare operator actions (a fleet reconfig), so the graveyard stays
/// tiny, and keeping them is what makes `load`'s borrow sound without
/// per-read bookkeeping.
#[derive(Debug)]
pub struct MapCell {
    current: AtomicPtr<ShardMap>,
    /// Every map ever installed, in order. Append-only until drop: this is
    /// what keeps `current`'s pointee alive for `load`'s borrow. The boxes
    /// are load-bearing, not indirection for its own sake: `current` points
    /// *into* them, so each map's address must survive the Vec reallocating
    /// as it grows.
    #[allow(clippy::vec_box)]
    graveyard: Mutex<Vec<Box<ShardMap>>>,
    /// Monotonic topology counter: the generation the *next* swapped-in
    /// map receives. Stamped into each map so readers see a generation
    /// coherent with the map they loaded.
    next_generation: AtomicU64,
}

impl MapCell {
    /// Creates the cell holding `map`.
    pub(crate) fn new(map: ShardMap) -> Self {
        let mut boxed = Box::new(map);
        boxed.generation = 0;
        let ptr: *mut ShardMap = &mut *boxed;
        Self {
            current: AtomicPtr::new(ptr),
            graveyard: Mutex::new(vec![boxed]),
            next_generation: AtomicU64::new(1),
        }
    }

    /// The current map. Lock-free; the borrow is valid for the cell's
    /// lifetime even across a concurrent [`swap`](Self::swap).
    pub fn load(&self) -> &ShardMap {
        // SAFETY: every pointer ever stored in `current` points into a
        // `Box<ShardMap>` held by `graveyard`, which only grows while the
        // cell is alive (boxes are never removed before drop, and a Box's
        // heap allocation is address-stable across moves of the Box). The
        // `&self` borrow keeps the cell — and thus the graveyard — alive
        // for the returned lifetime.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    /// Installs `map` as the current map. In-flight readers of the old map
    /// keep a valid borrow (see [`load`](Self::load)); its idle pooled
    /// connections are closed so they don't linger.
    pub(crate) fn swap(&self, map: ShardMap) {
        let mut boxed = Box::new(map);
        boxed.generation = self.next_generation.fetch_add(1, Ordering::AcqRel);
        let ptr: *mut ShardMap = &mut *boxed;
        let mut graveyard = self.graveyard.lock().unwrap_or_else(|e| e.into_inner());
        graveyard.push(boxed);
        let old = self.current.swap(ptr, Ordering::AcqRel);
        // SAFETY: `old` was stored in `current`, so it points into a box
        // in `graveyard` (still held — we only pushed).
        unsafe { (*old).close_idle() };
    }
}

/// Capped exponential backoff with equal jitter.
///
/// Attempt *k* (0-based) draws its delay uniformly from `[d/2, d]` with
/// `d = min(cap, base·2^k)`; [`reset`](Backoff::reset) restarts the
/// schedule after a success. The jitter PRNG is seeded explicitly, so a
/// test can pin the whole schedule.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: SplitMix64,
}

impl Backoff {
    /// A fresh schedule: `base` first-attempt delay, `cap` ceiling.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Self {
            base,
            cap,
            attempt: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// The next delay in the schedule (advances the attempt counter).
    pub fn next_delay(&mut self) -> Duration {
        let raw = exp_delay(self.base, self.cap, self.attempt);
        self.attempt = self.attempt.saturating_add(1);
        jittered(raw, &mut self.rng)
    }

    /// Attempts taken since construction or the last reset.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Restarts the schedule (call after a successful exchange).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// `min(cap, base·2^attempt)` with saturation, in micros arithmetic.
pub fn exp_delay(base: Duration, cap: Duration, attempt: u32) -> Duration {
    let base_us = u64::try_from(base.as_micros()).unwrap_or(u64::MAX);
    let cap_us = u64::try_from(cap.as_micros()).unwrap_or(u64::MAX);
    let scaled = base_us
        .checked_shl(attempt.min(63))
        .unwrap_or(u64::MAX)
        .max(base_us);
    Duration::from_micros(scaled.min(cap_us))
}

/// Equal jitter: uniform in `[d/2, d]`.
fn jittered(d: Duration, rng: &mut SplitMix64) -> Duration {
    let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
    let half = us / 2;
    let span = us - half;
    let offset = if span == 0 {
        0
    } else {
        rng.next_u64() % (span + 1)
    };
    Duration::from_micros(half + offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    const CONNECT: Duration = Duration::from_secs(1);
    const READ: Duration = Duration::from_secs(1);

    fn map_of(fleet: &[&[&str]]) -> ShardMap {
        let fleet: Vec<Vec<String>> = fleet
            .iter()
            .map(|r| r.iter().map(|a| a.to_string()).collect())
            .collect();
        ShardMap::from_fleet(&fleet, 2, CONNECT, READ)
    }

    #[test]
    fn parse_fleet_accepts_both_labeled_and_bare_grammar() {
        let labeled = parse_fleet("range0=a:1,b:2;range1=c:3").expect("labeled parses");
        assert_eq!(labeled, vec![vec!["a:1", "b:2"], vec!["c:3"]]);
        let bare = parse_fleet("a:1,b:2 ; c:3").expect("bare parses");
        assert_eq!(bare, labeled);
    }

    #[test]
    fn parse_fleet_rejects_bad_specs() {
        assert!(parse_fleet("").is_err(), "empty spec");
        assert!(parse_fleet("range1=a:1").is_err(), "label out of order");
        assert!(parse_fleet("rangex=a:1").is_err(), "bad label");
        assert!(parse_fleet("a:1;,").is_err(), "empty range");
    }

    #[test]
    fn backoff_schedule_caps_doubles_and_jitters_within_bounds() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(80);
        let mut b = Backoff::new(base, cap, 7);
        // Raw schedule: 10, 20, 40, 80, 80, 80 ms — each drawn delay must
        // land in [raw/2, raw].
        let raws = [10u64, 20, 40, 80, 80, 80];
        for (k, raw_ms) in raws.iter().enumerate() {
            let raw = Duration::from_millis(*raw_ms);
            assert_eq!(exp_delay(base, cap, k as u32), raw, "raw at attempt {k}");
            let d = b.next_delay();
            assert!(d >= raw / 2, "attempt {k}: {d:?} below half of {raw:?}");
            assert!(d <= raw, "attempt {k}: {d:?} above {raw:?}");
        }
        assert_eq!(b.attempt(), 6);
        b.reset();
        assert_eq!(b.attempt(), 0);
        let d = b.next_delay();
        assert!(d >= base / 2 && d <= base, "post-reset delay re-bases");
    }

    #[test]
    fn backoff_jitter_actually_varies() {
        let mut b = Backoff::new(Duration::from_millis(64), Duration::from_secs(1), 42);
        // At a fixed attempt the raw delay is constant; distinct draws
        // across seeds/attempts should not all collapse to one value.
        let draws: Vec<Duration> = (0..8)
            .map(|_| {
                b.reset();
                b.next_delay()
            })
            .collect();
        assert!(
            draws.iter().any(|d| d != &draws[0]),
            "eight jittered draws were all identical: {draws:?}"
        );
    }

    #[test]
    fn replica_health_transitions_and_probe_schedule() {
        let map = map_of(&[&["a:1"]]);
        let rep = map.range(0).replica(0);
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(40);
        assert!(rep.is_live());
        assert!(rep.mark_suspect(1_000, base, cap), "first flip reported");
        assert!(!rep.mark_suspect(1_000, base, cap), "second flip is not");
        assert!(!rep.is_live());
        assert!(!rep.probe_due(1_000), "probe scheduled after now");
        assert!(rep.probe_due(1_000 + cap.as_micros() as u64));
        rep.probe_failed(2_000, base, cap);
        assert!(rep.mark_live(), "suspect→live reported");
        assert!(!rep.mark_live(), "live→live is not");
        assert_eq!(map.live_replicas(), 1);
    }

    #[test]
    fn preferred_rotates_over_live_replicas_and_falls_back_to_zero() {
        let map = map_of(&[&["a:1", "b:2", "c:3"]]);
        let range = map.range(0);
        let base = Duration::from_millis(1);
        // All live: consecutive picks walk the whole set in order.
        assert_eq!(
            [range.preferred(), range.preferred(), range.preferred()],
            [0, 1, 2]
        );
        assert_eq!(range.preferred(), 0, "rotation wraps");
        // Suspects drop out of the rotation immediately.
        range.replica(0).mark_suspect(0, base, base);
        let picks = [range.preferred(), range.preferred(), range.preferred()];
        assert!(
            picks.iter().all(|&j| j == 1 || j == 2),
            "suspect replica 0 still picked: {picks:?}"
        );
        assert!(
            picks.contains(&1) && picks.contains(&2),
            "rotation collapsed to one live replica: {picks:?}"
        );
        range.replica(1).mark_suspect(0, base, base);
        assert_eq!(range.preferred(), 2, "single live replica always picked");
        assert_eq!(range.preferred(), 2);
        range.replica(2).mark_suspect(0, base, base);
        assert_eq!(range.preferred(), 0, "all suspect → replica 0 absorbs");
        assert_eq!(range.live_count(), 0);
    }

    #[test]
    fn map_cell_swap_is_safe_under_concurrent_readers() {
        let cell = Arc::new(MapCell::new(map_of(&[&["seed:0"]])));
        let stop = Arc::new(AtomicBool::new(false));
        let loads = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                let loads = Arc::clone(&loads);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let map = cell.load();
                        // Hold the borrow across real work: every loaded
                        // map must stay fully intact.
                        assert!(map.range_count() >= 1);
                        for range in map.ranges() {
                            assert!(!range.is_empty());
                            assert!(!range.replica(0).addr().is_empty());
                        }
                        loads.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for gen in 0..200u32 {
            let addr = format!("gen{gen}:1");
            cell.swap(map_of(&[&[addr.as_str()], &["other:2"]]));
        }
        // Keep swapping until the readers demonstrably overlapped with at
        // least some swaps — on a single-core host the 200 swaps above can
        // finish before any reader thread is ever scheduled.
        let mut gen = 200u32;
        while loads.load(Ordering::Relaxed) < 64 {
            let addr = format!("gen{gen}:1");
            cell.swap(map_of(&[&[addr.as_str()], &["other:2"]]));
            gen += 1;
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
        assert!(loads.load(Ordering::Relaxed) > 0, "readers made progress");
        assert_eq!(cell.load().range_count(), 2);
        let last = format!("gen{}:1", gen - 1);
        assert_eq!(cell.load().range(0).replica(0).addr(), last);
        // Each swap bumps the topology generation: `gen` swaps happened
        // since the cell was created at generation 0.
        assert_eq!(cell.load().generation(), u64::from(gen));
    }

    #[test]
    fn map_cell_stamps_monotonic_generations() {
        let cell = MapCell::new(map_of(&[&["a:1"]]));
        assert_eq!(cell.load().generation(), 0);
        cell.swap(map_of(&[&["b:2"]]));
        assert_eq!(cell.load().generation(), 1);
        cell.swap(map_of(&[&["c:3"], &["d:4"]]));
        assert_eq!(cell.load().generation(), 2);
    }
}
