//! The router proper: verb dispatch, scatter/gather, deterministic merge.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qppt_core::{ExecStats, OpStats, PartialAggregate, PlanOptions};
use qppt_obs::{merge_exposition, SpanRec, Trace};
use qppt_par::merge_partial_aggregates;
use qppt_server::protocol::{
    apply_overrides, parse_partial_status, parse_request, read_partial_body, read_text_body,
    write_run_response, CacheCmd, ClientError, Request, ServedStats, TraceMode, MODE_KEY,
    TRACE_KEY,
};
use qppt_server::{serve_lines, LineService, Reply, ServerConfig, ServerHandle};
use qppt_ssb::queries;
use qppt_storage::{OrderKey, QueryResult, QuerySpec};

use crate::obs::RouterObs;
use crate::pool::{ShardConn, ShardPool};

/// Router tunables: the shard fleet plus per-shard transport limits.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Shard addresses **in shard order** — entry `i` must be the server
    /// started with `--shard i/n`.
    pub shard_addrs: Vec<String>,
    /// Per-dial TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-read socket timeout — a shard that stops mid-response fails the
    /// request (after the one retry) instead of hanging the client.
    pub read_timeout: Duration,
    /// Idle pooled connections kept per shard.
    pub conns_per_shard: usize,
}

impl RouterConfig {
    /// Defaults: 5 s connect, 60 s read, 4 pooled connections per shard.
    pub fn new(shard_addrs: Vec<String>) -> Self {
        Self {
            shard_addrs,
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(60),
            conns_per_shard: 4,
        }
    }
}

/// Router-side failure of one request.
#[derive(Debug)]
pub enum RouterError {
    /// A shard could not be dialed, timed out, or broke protocol — even
    /// after the one bounded reconnect retry. Rendered on the wire as
    /// `ERR shard <i> unavailable (<detail>)`.
    ShardUnavailable { shard: usize, detail: String },
    /// The shards answered `ERR` (a query/validation error, relayed
    /// verbatim), or their partials disagreed structurally.
    Query(String),
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShardUnavailable { shard, detail } => {
                write!(f, "shard {shard} unavailable ({detail})")
            }
            Self::Query(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RouterError {}

/// One shard's gathered partial plus its served statistics.
struct Gathered {
    partial: PartialAggregate,
    stats: ServedStats,
}

/// Per-shard failure before it is attributed to a shard index.
enum GatherError {
    Query(String),
    Unavailable(String),
}

impl GatherError {
    fn at(self, shard: usize) -> RouterError {
        match self {
            Self::Query(msg) => RouterError::Query(msg),
            Self::Unavailable(detail) => RouterError::ShardUnavailable { shard, detail },
        }
    }
}

/// A request line sent (or not) to one shard during the scatter phase.
enum SendOutcome {
    /// The line is in flight; `retried` records whether the one reconnect
    /// retry was already spent getting it there.
    Sent { conn: ShardConn, retried: bool },
    /// Even the retry dial failed.
    Failed(String),
}

/// The scatter/gather router over an ordered shard fleet. Implements
/// [`LineService`], so [`serve_router`] gives it the exact same TCP
/// frontend (length-capped lines, drain-and-`ERR`, graceful shutdown) as
/// the shards themselves.
pub struct Router {
    shards: Vec<ShardPool>,
    /// The SSB named-query registry — resolved locally so the router knows
    /// each alias's ORDER BY for the merge (and can reject unknown names
    /// without touching the fleet).
    queries: BTreeMap<String, QuerySpec>,
    started: Instant,
    obs: Option<Arc<RouterObs>>,
}

impl Router {
    /// Builds the router. Panics if `shard_addrs` is empty — a router
    /// without shards cannot answer anything.
    pub fn new(config: RouterConfig) -> Self {
        assert!(
            !config.shard_addrs.is_empty(),
            "RouterConfig.shard_addrs must name at least one shard"
        );
        let shards: Vec<ShardPool> = config
            .shard_addrs
            .iter()
            .map(|addr| {
                ShardPool::new(
                    addr.clone(),
                    config.conns_per_shard,
                    config.connect_timeout,
                    config.read_timeout,
                )
            })
            .collect();
        let queries = queries::all_queries()
            .into_iter()
            .map(|q| (q.id.to_ascii_lowercase(), q))
            .collect();
        Self {
            shards,
            queries,
            started: Instant::now(),
            obs: None,
        }
    }

    /// Attaches observability state (builder-style): per-verb request
    /// metrics, per-shard RTT histograms, the merged `METRICS`
    /// exposition, and the slow-query log. Without it the router serves
    /// uninstrumented (`--no-obs`) and `METRICS` answers `ERR`.
    pub fn with_obs(mut self, obs: Arc<RouterObs>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The attached observability state, if any.
    pub fn obs(&self) -> Option<&Arc<RouterObs>> {
        self.obs.as_ref()
    }

    /// Seconds since this router was constructed (the `INFO`
    /// `uptime_secs=` field).
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The crate version reported as `build=` by `INFO`.
    pub fn build() -> &'static str {
        env!("CARGO_PKG_VERSION")
    }

    /// Number of shards fronted.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Blocks until every shard answers `PING` (dialing fresh each
    /// attempt), or `timeout` elapses — for racing just-spawned shards.
    pub fn wait_for_shards(&self, timeout: Duration) -> Result<(), RouterError> {
        let deadline = Instant::now() + timeout;
        for (i, pool) in self.shards.iter().enumerate() {
            loop {
                let attempt = pool.dial().map_err(|e| e.to_string()).and_then(|mut c| {
                    c.send_line("PING").map_err(|e| e.to_string())?;
                    c.read_status().map_err(|e| e.to_string())?;
                    Ok(c)
                });
                match attempt {
                    Ok(c) => {
                        pool.checkin(c);
                        break;
                    }
                    Err(detail) if Instant::now() >= deadline => {
                        return Err(RouterError::ShardUnavailable { shard: i, detail })
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(100)),
                }
            }
        }
        Ok(())
    }

    /// Scatters `forward` (a `RUN`/`QUERY` line already carrying
    /// `mode=partial`) to every shard, gathers the partials in shard
    /// order, merges them, and applies `order_by` — the merged result is
    /// byte-identical to a single node running the same query.
    pub fn scatter_partial(
        &self,
        forward: &str,
        order_by: &[OrderKey],
    ) -> Result<(QueryResult, ExecStats, usize), RouterError> {
        self.scatter_partial_traced(forward, order_by, None)
    }

    /// [`scatter_partial`](Self::scatter_partial) with request-scoped
    /// tracing: the gather wall time becomes a `scatter` span, each
    /// shard's own span tree (carried back on the partial response) is
    /// grafted under it as `shard<i>`, and the merge gets its own span.
    /// Result bytes are identical with and without a trace.
    fn scatter_partial_traced(
        &self,
        forward: &str,
        order_by: &[OrderKey],
        mut trace: Option<&mut Trace>,
    ) -> Result<(QueryResult, ExecStats, usize), RouterError> {
        let started = Instant::now();
        let obs = self.obs.as_deref();
        // Scatter first: every shard has the request in flight before any
        // response is read, so shards execute concurrently.
        let in_flight: Vec<SendOutcome> = self
            .shards
            .iter()
            .map(|pool| send_request(pool, forward, obs))
            .collect();
        // Gather in shard order (the deterministic merge order). Every
        // in-flight response is consumed even after an earlier shard
        // failed, so surviving pooled connections stay synchronized.
        let mut query_err: Option<String> = None;
        let mut unavailable: Option<(usize, String)> = None;
        let mut gathered: Vec<Gathered> = Vec::with_capacity(self.shards.len());
        for (i, sent) in in_flight.into_iter().enumerate() {
            match exchange(&self.shards[i], sent, forward, read_partial_response, obs) {
                Ok(g) => {
                    if let Some(o) = obs {
                        o.record_rtt(i, elapsed_micros(started));
                    }
                    gathered.push(g);
                }
                Err(GatherError::Query(msg)) => {
                    if query_err.is_none() {
                        query_err = Some(msg);
                    }
                }
                Err(GatherError::Unavailable(detail)) => {
                    if unavailable.is_none() {
                        unavailable = Some((i, detail));
                    }
                }
            }
        }
        // A query error is deterministic across the fleet (same spec, same
        // replicated dims) — relay it even if some other shard was also
        // down; a partial gather is *never* served as a complete answer.
        if let Some(msg) = query_err {
            return Err(RouterError::Query(msg));
        }
        if let Some((shard, detail)) = unavailable {
            return Err(RouterError::ShardUnavailable { shard, detail });
        }
        if let Some(t) = trace.as_deref_mut() {
            // The scatter span's wall time covers every gather, so each
            // grafted shard tree's root (the shard's request total, which
            // excludes the network) stays ≤ its parent.
            let scatter = t.add(t.root(), "scatter", elapsed_micros(started));
            for (i, g) in gathered.iter().enumerate() {
                if !g.stats.spans.is_empty() {
                    // A malformed shard tree is dropped, never fatal —
                    // tracing must not fail a query that produced rows.
                    let _ = t.graft(scatter, &format!("shard{i}"), &g.stats.spans);
                }
            }
        }

        let workers = gathered.iter().map(|g| g.stats.workers).max().unwrap_or(1);
        let mut stats = ExecStats::default();
        for (i, g) in gathered.iter().enumerate() {
            stats.push(OpStats {
                label: format!("gather: shard {i} @ {}", self.shards[i].addr()),
                out_keys: g.partial.group_count(),
                out_tuples: g.partial.group_count(),
                index_kind: "wire".to_string(),
                memory_bytes: 0,
                micros: g.stats.total_micros,
            });
        }
        let merge_started = Instant::now();
        let parts: Vec<PartialAggregate> = gathered.into_iter().map(|g| g.partial).collect();
        let merged = merge_partial_aggregates(parts)
            .map_err(|e| RouterError::Query(e.to_string()))?
            .expect("at least one shard gathered");
        let result = merged.into_result(order_by);
        let merge_micros = elapsed_micros(merge_started);
        if let Some(o) = obs {
            o.record_merge(merge_micros);
        }
        if let Some(t) = trace {
            t.add(t.root(), "merge", merge_micros);
        }
        stats.total_micros = started.elapsed().as_micros();
        Ok((result, stats, workers))
    }

    /// Sends a single-line-response command (`INFO`, `CACHE …`) to every
    /// shard; returns the `OK` payloads in shard order.
    fn fanout_status(&self, line: &str) -> Result<Vec<String>, RouterError> {
        let obs = self.obs.as_deref();
        let in_flight: Vec<SendOutcome> = self
            .shards
            .iter()
            .map(|pool| send_request(pool, line, obs))
            .collect();
        let mut payloads = Vec::with_capacity(self.shards.len());
        for (i, sent) in in_flight.into_iter().enumerate() {
            let read = |c: &mut ShardConn| c.read_status();
            payloads.push(exchange(&self.shards[i], sent, line, read, obs).map_err(|e| e.at(i))?);
        }
        Ok(payloads)
    }

    /// Fans `METRICS` out to every shard; returns `(shard id, exposition
    /// text)` pairs in shard order, ready for
    /// [`merge_exposition`](qppt_obs::merge_exposition).
    fn fanout_metrics(&self) -> Result<Vec<(String, String)>, RouterError> {
        let obs = self.obs.as_deref();
        let in_flight: Vec<SendOutcome> = self
            .shards
            .iter()
            .map(|pool| send_request(pool, "METRICS", obs))
            .collect();
        let mut out = Vec::with_capacity(self.shards.len());
        for (i, sent) in in_flight.into_iter().enumerate() {
            let read = |c: &mut ShardConn| {
                c.read_status()?;
                let body = read_text_body(c.reader())?;
                let mut text = body.join("\n");
                text.push('\n');
                Ok(text)
            };
            let text =
                exchange(&self.shards[i], sent, "METRICS", read, obs).map_err(|e| e.at(i))?;
            out.push((i.to_string(), text));
        }
        Ok(out)
    }

    /// `METRICS` at the router: the merged fleet exposition — every shard
    /// family re-labeled `shard="<i>"` plus summed `shard="fleet"`
    /// samples — followed by the router's own `qppt_router_*` families.
    fn handle_metrics(&self, w: &mut dyn Write) -> io::Result<()> {
        let Some(obs) = &self.obs else {
            return writeln!(w, "ERR metrics disabled (--no-obs)");
        };
        match self.fanout_metrics() {
            Err(e) => writeln!(w, "ERR {e}"),
            Ok(shard_expos) => match merge_exposition(&shard_expos) {
                Err(e) => writeln!(w, "ERR metrics merge failed ({e})"),
                Ok(mut merged) => {
                    merged.push_str(&obs.render());
                    writeln!(w, "OK metrics")?;
                    for l in merged.lines() {
                        writeln!(w, "{l}")?;
                    }
                    writeln!(w, "END")
                }
            },
        }
    }

    /// Forwards a text-bodied command (`LIST`, `EXPLAIN`) to shard 0 and
    /// relays the response. Plans and the query registry are identical on
    /// every shard (same specs, same replicated dimension tables), so one
    /// shard speaks for the fleet.
    fn relay_text(&self, line: &str, w: &mut dyn Write) -> io::Result<()> {
        let obs = self.obs.as_deref();
        let pool = &self.shards[0];
        let sent = send_request(pool, line, obs);
        let read = |c: &mut ShardConn| {
            let status = c.read_status()?;
            let body = read_text_body(c.reader())?;
            Ok((status, body))
        };
        match exchange(pool, sent, line, read, obs) {
            Err(e) => writeln!(w, "ERR {}", e.at(0)),
            Ok((status, body)) => {
                writeln!(w, "OK {status}")?;
                for l in &body {
                    writeln!(w, "{l}")?;
                }
                writeln!(w, "END")
            }
        }
    }

    /// `INFO` fan-out: fleet-level `shards=`/`rows=` (summed), the shared
    /// descriptor fields from shard 0, the router's own
    /// `uptime_secs=`/`build=` plus the fleet's
    /// `uptime_min_secs=`/`uptime_max_secs=` spread, and the per-shard
    /// map (`shard<i>=<addr> rows<i>=<n>`).
    fn handle_info(&self, w: &mut dyn Write) -> io::Result<()> {
        match self.fanout_status("INFO") {
            Err(e) => writeln!(w, "ERR {e}"),
            Ok(lines) => {
                let field = |l: &str, key: &str| -> Option<u64> {
                    l.split_whitespace()
                        .find_map(|kv| kv.strip_prefix(key))
                        .and_then(|v| v.strip_prefix('='))
                        .and_then(|v| v.parse().ok())
                };
                let rows: Vec<u64> = lines
                    .iter()
                    .map(|l| field(l, "rows").unwrap_or(0))
                    .collect();
                let uptimes: Vec<u64> = lines
                    .iter()
                    .filter_map(|l| field(l, "uptime_secs"))
                    .collect();
                write!(
                    w,
                    "OK shards={} rows={}",
                    self.shards.len(),
                    rows.iter().sum::<u64>()
                )?;
                for kv in lines[0].split_whitespace() {
                    match kv.split_once('=') {
                        // Fleet-level, per-shard, or router-level fields
                        // replace these shard-0 values.
                        Some(("rows" | "shard" | "shards" | "uptime_secs" | "build", _)) => {}
                        Some(_) => write!(w, " {kv}")?,
                        None => {}
                    }
                }
                write!(
                    w,
                    " uptime_secs={} uptime_min_secs={} uptime_max_secs={} build={}",
                    self.uptime_secs(),
                    uptimes.iter().min().copied().unwrap_or(0),
                    uptimes.iter().max().copied().unwrap_or(0),
                    Self::build(),
                )?;
                for (i, (pool, n)) in self.shards.iter().zip(&rows).enumerate() {
                    write!(w, " shard{i}={} rows{i}={n}", pool.addr())?;
                }
                writeln!(w)
            }
        }
    }

    /// `CACHE` fan-out: `STATS` sums every per-tier counter across shards
    /// (and appends `shards=N`); `CLEAR`/`CLEAR dims` clears everywhere.
    fn handle_cache(&self, cmd: CacheCmd, w: &mut dyn Write) -> io::Result<()> {
        let line = match cmd {
            CacheCmd::Stats => "CACHE STATS",
            CacheCmd::Clear => "CACHE CLEAR",
            CacheCmd::ClearDims => "CACHE CLEAR dims",
        };
        match self.fanout_status(line) {
            Err(e) => writeln!(w, "ERR {e}"),
            Ok(lines) => match cmd {
                CacheCmd::Clear => writeln!(w, "OK cleared"),
                CacheCmd::ClearDims => writeln!(w, "OK cleared dims"),
                CacheCmd::Stats => {
                    // Sum counters key-wise, keeping shard 0's field order
                    // so the line shape matches a single node's.
                    let mut keys: Vec<&str> = Vec::new();
                    let mut sums: BTreeMap<&str, u64> = BTreeMap::new();
                    for l in &lines {
                        for kv in l.split_whitespace() {
                            if let Some((k, v)) = kv.split_once('=') {
                                if !sums.contains_key(k) {
                                    keys.push(k);
                                }
                                *sums.entry(k).or_insert(0) += v.parse::<u64>().unwrap_or(0);
                            }
                        }
                    }
                    write!(w, "OK")?;
                    for k in keys {
                        write!(w, " {k}={}", sums[k])?;
                    }
                    writeln!(w, " shards={}", self.shards.len())
                }
            },
        }
    }

    /// Validates client options locally: `mode` is router-reserved, and
    /// anything `apply_overrides` would reject on a shard is rejected here
    /// without touching the fleet. Returns the parsed request controls
    /// (the router acts on `trace=`).
    fn check_options(
        &self,
        options: &[(String, String)],
    ) -> Result<qppt_server::RunControls, String> {
        if options.iter().any(|(k, _)| k == MODE_KEY) {
            return Err(
                "option mode is reserved on the router (it always gathers partials)".to_string(),
            );
        }
        apply_overrides(PlanOptions::default(), options).map(|(_, controls)| controls)
    }

    /// Scatters the client's own `RUN`/`QUERY` line (plus `mode=partial`,
    /// plus a pinned `trace=<id>` when the request is traced — appended
    /// *after* the client's options, so the later duplicate wins on the
    /// shards and every shard stamps its spans with the router's id) and
    /// writes the merged full response.
    fn scatter_and_respond(
        &self,
        verb: &'static str,
        line: &str,
        order_by: &[OrderKey],
        trace_mode: TraceMode,
        mut w: &mut dyn Write,
    ) -> io::Result<()> {
        let started = Instant::now();
        let mut trace = make_trace(trace_mode);
        let forward = match &trace {
            Some(t) => format!("{line} {MODE_KEY}=partial {TRACE_KEY}={}", t.id()),
            None => format!("{line} {MODE_KEY}=partial"),
        };
        let out = match self.scatter_partial_traced(&forward, order_by, trace.as_mut()) {
            Err(e) => writeln!(w, "ERR {e}"),
            Ok((result, stats, workers)) => {
                let spans = finish_trace(trace, stats.total_micros);
                write_run_response(&mut w, &result, &stats, workers, &spans)
            }
        };
        self.slow_log(verb, started);
        out
    }

    /// Emits the router's slow-query log line (and counts it) when the
    /// routed request's wall time reached the `--slow-query-micros`
    /// threshold.
    fn slow_log(&self, verb: &'static str, started: Instant) {
        let Some(obs) = &self.obs else { return };
        let Some(threshold) = obs.slow_threshold() else {
            return;
        };
        let micros = elapsed_micros(started);
        if micros < threshold {
            return;
        }
        obs.note_slow();
        eprintln!(
            "slow-query verb={verb} outcome=\"routed\" micros={micros} shards={}",
            self.shards.len()
        );
    }
}

/// Process-wide source of router-picked trace ids (`trace=on` from a
/// client). Monotonic, never reused within a process.
static TRACE_SEQ: AtomicU64 = AtomicU64::new(1);

/// Creates the request [`Trace`] demanded by the client's `trace=` option
/// (a client-pinned numeric id is honored verbatim, `on` draws a fresh
/// router-unique id). Independent of `--no-obs` — tracing is
/// request-scoped state, not registry state.
fn make_trace(mode: TraceMode) -> Option<Trace> {
    match mode {
        TraceMode::Off => None,
        TraceMode::On => Some(Trace::new(TRACE_SEQ.fetch_add(1, Ordering::Relaxed))),
        TraceMode::Id(id) => Some(Trace::new(id)),
    }
}

/// Closes out a request trace into its wire-ordered span list (empty when
/// untraced).
fn finish_trace(trace: Option<Trace>, total_micros: u128) -> Vec<SpanRec> {
    match trace {
        None => Vec::new(),
        Some(t) => t.finish(u64::try_from(total_micros).unwrap_or(u64::MAX)),
    }
}

/// Saturating `u64` micros since `started`.
fn elapsed_micros(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The metrics label for a parsed request.
fn verb_of(req: &Request) -> &'static str {
    match req {
        Request::Ping => "PING",
        Request::Quit => "QUIT",
        Request::Shutdown => "SHUTDOWN",
        Request::Info => "INFO",
        Request::Cache(_) => "CACHE",
        Request::List => "LIST",
        Request::Explain { .. } | Request::ExplainSpec { .. } => "EXPLAIN",
        Request::Run { .. } => "RUN",
        Request::Query { .. } => "QUERY",
        Request::Metrics => "METRICS",
    }
}

impl LineService for Router {
    fn handle(&self, line: &str, w: &mut dyn Write) -> io::Result<Reply> {
        let started = Instant::now();
        let parsed = parse_request(line);
        let verb = parsed.as_ref().ok().map(verb_of);
        let reply = self.dispatch(parsed, line, w)?;
        if let (Some(obs), Some(verb)) = (&self.obs, verb) {
            obs.record_request(verb, elapsed_micros(started));
        }
        Ok(reply)
    }
}

impl Router {
    fn dispatch(
        &self,
        parsed: Result<Request, String>,
        line: &str,
        mut w: &mut dyn Write,
    ) -> io::Result<Reply> {
        match parsed {
            Err(msg) => writeln!(w, "ERR {msg}")?,
            Ok(Request::Ping) => writeln!(w, "OK pong")?,
            Ok(Request::Quit) => {
                writeln!(w, "OK bye")?;
                return Ok(Reply::Close);
            }
            Ok(Request::Shutdown) => {
                // Stops the router only; shards are long-lived and keep
                // serving (their own clients, or a restarted router).
                writeln!(w, "OK shutting down")?;
                return Ok(Reply::Shutdown);
            }
            Ok(Request::Info) => self.handle_info(&mut w)?,
            Ok(Request::Metrics) => self.handle_metrics(&mut w)?,
            Ok(Request::Cache(cmd)) => self.handle_cache(cmd, &mut w)?,
            Ok(Request::List) | Ok(Request::Explain { .. }) | Ok(Request::ExplainSpec { .. }) => {
                self.relay_text(line, &mut w)?
            }
            Ok(Request::Run { query, options }) => match self.check_options(&options) {
                Err(msg) => writeln!(w, "ERR {msg}")?,
                Ok(controls) => {
                    match self.queries.get(&query) {
                        // Mirrors the shard-side unknown-name error so
                        // clients see one message either way.
                        None => writeln!(
                            w,
                            "ERR unknown query {query} (LIST shows the registered names)"
                        )?,
                        Some(spec) => {
                            let order_by = spec.order_by.clone();
                            self.scatter_and_respond(
                                "RUN",
                                line,
                                &order_by,
                                controls.trace,
                                &mut w,
                            )?;
                        }
                    }
                }
            },
            Ok(Request::Query { spec, options }) => match self.check_options(&options) {
                Err(msg) => writeln!(w, "ERR {msg}")?,
                Ok(controls) => {
                    self.scatter_and_respond(
                        "QUERY",
                        line,
                        &spec.order_by,
                        controls.trace,
                        &mut w,
                    )?;
                }
            },
        }
        Ok(Reply::Continue)
    }
}

/// Serves `router` on `addr` under the default frontend tunables.
pub fn serve_router(router: Arc<Router>, addr: &str) -> io::Result<ServerHandle> {
    serve_router_with(router, addr, ServerConfig::default())
}

/// [`serve_router`] with explicit frontend tunables — the same
/// [`ServerConfig`] (poll tick, request-line cap) as qppt-server, because
/// it is literally the same frontend.
pub fn serve_router_with(
    router: Arc<Router>,
    addr: &str,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    serve_lines(router, addr, config)
}

/// Scatter-phase send: a pooled connection if possible, else the one
/// bounded retry on a fresh dial (idle conns are cleared first — they date
/// from before whatever broke). `obs` counts the retry attempt and, when
/// the fresh dial lands, the reconnect.
fn send_request(pool: &ShardPool, line: &str, obs: Option<&RouterObs>) -> SendOutcome {
    let first = pool
        .checkout()
        .and_then(|mut c| c.send_line(line).map(|()| c));
    match first {
        Ok(conn) => SendOutcome::Sent {
            conn,
            retried: false,
        },
        Err(_) => {
            if let Some(o) = obs {
                o.note_retry();
            }
            pool.clear();
            match pool.dial().and_then(|mut c| c.send_line(line).map(|()| c)) {
                Ok(conn) => {
                    if let Some(o) = obs {
                        o.note_reconnect();
                    }
                    SendOutcome::Sent {
                        conn,
                        retried: true,
                    }
                }
                Err(e) => SendOutcome::Failed(e.to_string()),
            }
        }
    }
}

/// Gather-phase read with the retry budget: a transport/protocol failure
/// on a not-yet-retried shard gets one fresh dial + resend + reread (the
/// request is an idempotent read). A shard `ERR` is a clean, complete
/// exchange — the connection is checked back in and the error surfaces as
/// [`GatherError::Query`].
fn exchange<T>(
    pool: &ShardPool,
    sent: SendOutcome,
    line: &str,
    read: impl Fn(&mut ShardConn) -> Result<T, ClientError>,
    obs: Option<&RouterObs>,
) -> Result<T, GatherError> {
    let (mut conn, retried) = match sent {
        SendOutcome::Sent { conn, retried } => (conn, retried),
        SendOutcome::Failed(detail) => return Err(GatherError::Unavailable(detail)),
    };
    match read(&mut conn) {
        Ok(v) => {
            pool.checkin(conn);
            Ok(v)
        }
        Err(ClientError::Server(msg)) => {
            pool.checkin(conn);
            Err(GatherError::Query(msg))
        }
        Err(e) => {
            if retried {
                return Err(GatherError::Unavailable(e.to_string()));
            }
            if let Some(o) = obs {
                o.note_retry();
            }
            pool.clear();
            let fresh = pool.dial().and_then(|mut c| c.send_line(line).map(|()| c));
            match fresh {
                Err(e2) => Err(GatherError::Unavailable(e2.to_string())),
                Ok(mut c2) => {
                    if let Some(o) = obs {
                        o.note_reconnect();
                    }
                    match read(&mut c2) {
                        Ok(v) => {
                            pool.checkin(c2);
                            Ok(v)
                        }
                        Err(ClientError::Server(msg)) => {
                            pool.checkin(c2);
                            Err(GatherError::Query(msg))
                        }
                        Err(e2) => Err(GatherError::Unavailable(e2.to_string())),
                    }
                }
            }
        }
    }
}

/// Reads one complete `PARTIAL` response off a shard connection.
fn read_partial_response(conn: &mut ShardConn) -> Result<Gathered, ClientError> {
    let status = conn.read_status()?;
    let rows = parse_partial_status(&status).ok_or_else(|| {
        ClientError::Protocol(format!("expected a partial status, got: {status}"))
    })?;
    let (partial, stats) = read_partial_body(conn.reader(), rows)?;
    Ok(Gathered { partial, stats })
}
