//! The router proper: verb dispatch, scatter/gather, deterministic merge.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qppt_core::{ExecStats, OpStats, PartialAggregate, PlanOptions};
use qppt_par::merge_partial_aggregates;
use qppt_server::protocol::{
    apply_overrides, parse_partial_status, parse_request, read_partial_body, read_text_body,
    write_run_response, CacheCmd, ClientError, Request, ServedStats, MODE_KEY,
};
use qppt_server::{serve_lines, LineService, Reply, ServerConfig, ServerHandle};
use qppt_ssb::queries;
use qppt_storage::{OrderKey, QueryResult, QuerySpec};

use crate::pool::{ShardConn, ShardPool};

/// Router tunables: the shard fleet plus per-shard transport limits.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Shard addresses **in shard order** — entry `i` must be the server
    /// started with `--shard i/n`.
    pub shard_addrs: Vec<String>,
    /// Per-dial TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-read socket timeout — a shard that stops mid-response fails the
    /// request (after the one retry) instead of hanging the client.
    pub read_timeout: Duration,
    /// Idle pooled connections kept per shard.
    pub conns_per_shard: usize,
}

impl RouterConfig {
    /// Defaults: 5 s connect, 60 s read, 4 pooled connections per shard.
    pub fn new(shard_addrs: Vec<String>) -> Self {
        Self {
            shard_addrs,
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(60),
            conns_per_shard: 4,
        }
    }
}

/// Router-side failure of one request.
#[derive(Debug)]
pub enum RouterError {
    /// A shard could not be dialed, timed out, or broke protocol — even
    /// after the one bounded reconnect retry. Rendered on the wire as
    /// `ERR shard <i> unavailable (<detail>)`.
    ShardUnavailable { shard: usize, detail: String },
    /// The shards answered `ERR` (a query/validation error, relayed
    /// verbatim), or their partials disagreed structurally.
    Query(String),
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShardUnavailable { shard, detail } => {
                write!(f, "shard {shard} unavailable ({detail})")
            }
            Self::Query(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RouterError {}

/// One shard's gathered partial plus its served statistics.
struct Gathered {
    partial: PartialAggregate,
    stats: ServedStats,
}

/// Per-shard failure before it is attributed to a shard index.
enum GatherError {
    Query(String),
    Unavailable(String),
}

impl GatherError {
    fn at(self, shard: usize) -> RouterError {
        match self {
            Self::Query(msg) => RouterError::Query(msg),
            Self::Unavailable(detail) => RouterError::ShardUnavailable { shard, detail },
        }
    }
}

/// A request line sent (or not) to one shard during the scatter phase.
enum SendOutcome {
    /// The line is in flight; `retried` records whether the one reconnect
    /// retry was already spent getting it there.
    Sent { conn: ShardConn, retried: bool },
    /// Even the retry dial failed.
    Failed(String),
}

/// The scatter/gather router over an ordered shard fleet. Implements
/// [`LineService`], so [`serve_router`] gives it the exact same TCP
/// frontend (length-capped lines, drain-and-`ERR`, graceful shutdown) as
/// the shards themselves.
pub struct Router {
    shards: Vec<ShardPool>,
    /// The SSB named-query registry — resolved locally so the router knows
    /// each alias's ORDER BY for the merge (and can reject unknown names
    /// without touching the fleet).
    queries: BTreeMap<String, QuerySpec>,
}

impl Router {
    /// Builds the router. Panics if `shard_addrs` is empty — a router
    /// without shards cannot answer anything.
    pub fn new(config: RouterConfig) -> Self {
        assert!(
            !config.shard_addrs.is_empty(),
            "RouterConfig.shard_addrs must name at least one shard"
        );
        let shards = config
            .shard_addrs
            .iter()
            .map(|addr| {
                ShardPool::new(
                    addr.clone(),
                    config.conns_per_shard,
                    config.connect_timeout,
                    config.read_timeout,
                )
            })
            .collect();
        let queries = queries::all_queries()
            .into_iter()
            .map(|q| (q.id.to_ascii_lowercase(), q))
            .collect();
        Self { shards, queries }
    }

    /// Number of shards fronted.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Blocks until every shard answers `PING` (dialing fresh each
    /// attempt), or `timeout` elapses — for racing just-spawned shards.
    pub fn wait_for_shards(&self, timeout: Duration) -> Result<(), RouterError> {
        let deadline = Instant::now() + timeout;
        for (i, pool) in self.shards.iter().enumerate() {
            loop {
                let attempt = pool.dial().map_err(|e| e.to_string()).and_then(|mut c| {
                    c.send_line("PING").map_err(|e| e.to_string())?;
                    c.read_status().map_err(|e| e.to_string())?;
                    Ok(c)
                });
                match attempt {
                    Ok(c) => {
                        pool.checkin(c);
                        break;
                    }
                    Err(detail) if Instant::now() >= deadline => {
                        return Err(RouterError::ShardUnavailable { shard: i, detail })
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(100)),
                }
            }
        }
        Ok(())
    }

    /// Scatters `forward` (a `RUN`/`QUERY` line already carrying
    /// `mode=partial`) to every shard, gathers the partials in shard
    /// order, merges them, and applies `order_by` — the merged result is
    /// byte-identical to a single node running the same query.
    pub fn scatter_partial(
        &self,
        forward: &str,
        order_by: &[OrderKey],
    ) -> Result<(QueryResult, ExecStats, usize), RouterError> {
        let started = Instant::now();
        // Scatter first: every shard has the request in flight before any
        // response is read, so shards execute concurrently.
        let in_flight: Vec<SendOutcome> = self
            .shards
            .iter()
            .map(|pool| send_request(pool, forward))
            .collect();
        // Gather in shard order (the deterministic merge order). Every
        // in-flight response is consumed even after an earlier shard
        // failed, so surviving pooled connections stay synchronized.
        let mut query_err: Option<String> = None;
        let mut unavailable: Option<(usize, String)> = None;
        let mut gathered: Vec<Gathered> = Vec::with_capacity(self.shards.len());
        for (i, sent) in in_flight.into_iter().enumerate() {
            match exchange(&self.shards[i], sent, forward, read_partial_response) {
                Ok(g) => gathered.push(g),
                Err(GatherError::Query(msg)) => {
                    if query_err.is_none() {
                        query_err = Some(msg);
                    }
                }
                Err(GatherError::Unavailable(detail)) => {
                    if unavailable.is_none() {
                        unavailable = Some((i, detail));
                    }
                }
            }
        }
        // A query error is deterministic across the fleet (same spec, same
        // replicated dims) — relay it even if some other shard was also
        // down; a partial gather is *never* served as a complete answer.
        if let Some(msg) = query_err {
            return Err(RouterError::Query(msg));
        }
        if let Some((shard, detail)) = unavailable {
            return Err(RouterError::ShardUnavailable { shard, detail });
        }

        let workers = gathered.iter().map(|g| g.stats.workers).max().unwrap_or(1);
        let mut stats = ExecStats::default();
        for (i, g) in gathered.iter().enumerate() {
            stats.push(OpStats {
                label: format!("gather: shard {i} @ {}", self.shards[i].addr()),
                out_keys: g.partial.group_count(),
                out_tuples: g.partial.group_count(),
                index_kind: "wire".to_string(),
                memory_bytes: 0,
                micros: g.stats.total_micros,
            });
        }
        let parts: Vec<PartialAggregate> = gathered.into_iter().map(|g| g.partial).collect();
        let merged = merge_partial_aggregates(parts)
            .map_err(|e| RouterError::Query(e.to_string()))?
            .expect("at least one shard gathered");
        let result = merged.into_result(order_by);
        stats.total_micros = started.elapsed().as_micros();
        Ok((result, stats, workers))
    }

    /// Sends a single-line-response command (`INFO`, `CACHE …`) to every
    /// shard; returns the `OK` payloads in shard order.
    fn fanout_status(&self, line: &str) -> Result<Vec<String>, RouterError> {
        let in_flight: Vec<SendOutcome> = self
            .shards
            .iter()
            .map(|pool| send_request(pool, line))
            .collect();
        let mut payloads = Vec::with_capacity(self.shards.len());
        for (i, sent) in in_flight.into_iter().enumerate() {
            let read = |c: &mut ShardConn| c.read_status();
            payloads.push(exchange(&self.shards[i], sent, line, read).map_err(|e| e.at(i))?);
        }
        Ok(payloads)
    }

    /// Forwards a text-bodied command (`LIST`, `EXPLAIN`) to shard 0 and
    /// relays the response. Plans and the query registry are identical on
    /// every shard (same specs, same replicated dimension tables), so one
    /// shard speaks for the fleet.
    fn relay_text(&self, line: &str, w: &mut dyn Write) -> io::Result<()> {
        let pool = &self.shards[0];
        let sent = send_request(pool, line);
        let read = |c: &mut ShardConn| {
            let status = c.read_status()?;
            let body = read_text_body(c.reader())?;
            Ok((status, body))
        };
        match exchange(pool, sent, line, read) {
            Err(e) => writeln!(w, "ERR {}", e.at(0)),
            Ok((status, body)) => {
                writeln!(w, "OK {status}")?;
                for l in &body {
                    writeln!(w, "{l}")?;
                }
                writeln!(w, "END")
            }
        }
    }

    /// `INFO` fan-out: fleet-level `shards=`/`rows=` (summed), the shared
    /// descriptor fields from shard 0, and the per-shard map
    /// (`shard<i>=<addr> rows<i>=<n>`).
    fn handle_info(&self, w: &mut dyn Write) -> io::Result<()> {
        match self.fanout_status("INFO") {
            Err(e) => writeln!(w, "ERR {e}"),
            Ok(lines) => {
                let rows: Vec<u64> = lines
                    .iter()
                    .map(|l| {
                        l.split_whitespace()
                            .find_map(|kv| kv.strip_prefix("rows="))
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(0)
                    })
                    .collect();
                write!(
                    w,
                    "OK shards={} rows={}",
                    self.shards.len(),
                    rows.iter().sum::<u64>()
                )?;
                for kv in lines[0].split_whitespace() {
                    match kv.split_once('=') {
                        // Fleet-level or per-shard fields replace these.
                        Some(("rows" | "shard" | "shards", _)) => {}
                        Some(_) => write!(w, " {kv}")?,
                        None => {}
                    }
                }
                for (i, (pool, n)) in self.shards.iter().zip(&rows).enumerate() {
                    write!(w, " shard{i}={} rows{i}={n}", pool.addr())?;
                }
                writeln!(w)
            }
        }
    }

    /// `CACHE` fan-out: `STATS` sums every per-tier counter across shards
    /// (and appends `shards=N`); `CLEAR`/`CLEAR dims` clears everywhere.
    fn handle_cache(&self, cmd: CacheCmd, w: &mut dyn Write) -> io::Result<()> {
        let line = match cmd {
            CacheCmd::Stats => "CACHE STATS",
            CacheCmd::Clear => "CACHE CLEAR",
            CacheCmd::ClearDims => "CACHE CLEAR dims",
        };
        match self.fanout_status(line) {
            Err(e) => writeln!(w, "ERR {e}"),
            Ok(lines) => match cmd {
                CacheCmd::Clear => writeln!(w, "OK cleared"),
                CacheCmd::ClearDims => writeln!(w, "OK cleared dims"),
                CacheCmd::Stats => {
                    // Sum counters key-wise, keeping shard 0's field order
                    // so the line shape matches a single node's.
                    let mut keys: Vec<&str> = Vec::new();
                    let mut sums: BTreeMap<&str, u64> = BTreeMap::new();
                    for l in &lines {
                        for kv in l.split_whitespace() {
                            if let Some((k, v)) = kv.split_once('=') {
                                if !sums.contains_key(k) {
                                    keys.push(k);
                                }
                                *sums.entry(k).or_insert(0) += v.parse::<u64>().unwrap_or(0);
                            }
                        }
                    }
                    write!(w, "OK")?;
                    for k in keys {
                        write!(w, " {k}={}", sums[k])?;
                    }
                    writeln!(w, " shards={}", self.shards.len())
                }
            },
        }
    }

    /// Validates client options locally: `mode` is router-reserved, and
    /// anything `apply_overrides` would reject on a shard is rejected here
    /// without touching the fleet.
    fn check_options(&self, options: &[(String, String)]) -> Result<(), String> {
        if options.iter().any(|(k, _)| k == MODE_KEY) {
            return Err(
                "option mode is reserved on the router (it always gathers partials)".to_string(),
            );
        }
        apply_overrides(PlanOptions::default(), options).map(|_| ())
    }

    /// Scatters the client's own `RUN`/`QUERY` line (plus `mode=partial`)
    /// and writes the merged full response.
    fn scatter_and_respond(
        &self,
        line: &str,
        order_by: &[OrderKey],
        mut w: &mut dyn Write,
    ) -> io::Result<()> {
        let forward = format!("{line} {MODE_KEY}=partial");
        match self.scatter_partial(&forward, order_by) {
            Err(e) => writeln!(w, "ERR {e}"),
            Ok((result, stats, workers)) => write_run_response(&mut w, &result, &stats, workers),
        }
    }
}

impl LineService for Router {
    fn handle(&self, line: &str, mut w: &mut dyn Write) -> io::Result<Reply> {
        match parse_request(line) {
            Err(msg) => writeln!(w, "ERR {msg}")?,
            Ok(Request::Ping) => writeln!(w, "OK pong")?,
            Ok(Request::Quit) => {
                writeln!(w, "OK bye")?;
                return Ok(Reply::Close);
            }
            Ok(Request::Shutdown) => {
                // Stops the router only; shards are long-lived and keep
                // serving (their own clients, or a restarted router).
                writeln!(w, "OK shutting down")?;
                return Ok(Reply::Shutdown);
            }
            Ok(Request::Info) => self.handle_info(&mut w)?,
            Ok(Request::Cache(cmd)) => self.handle_cache(cmd, &mut w)?,
            Ok(Request::List) | Ok(Request::Explain { .. }) | Ok(Request::ExplainSpec { .. }) => {
                self.relay_text(line, &mut w)?
            }
            Ok(Request::Run { query, options }) => {
                if let Err(msg) = self.check_options(&options) {
                    writeln!(w, "ERR {msg}")?;
                } else {
                    match self.queries.get(&query) {
                        // Mirrors the shard-side unknown-name error so
                        // clients see one message either way.
                        None => writeln!(
                            w,
                            "ERR unknown query {query} (LIST shows the registered names)"
                        )?,
                        Some(spec) => {
                            let order_by = spec.order_by.clone();
                            self.scatter_and_respond(line, &order_by, &mut w)?;
                        }
                    }
                }
            }
            Ok(Request::Query { spec, options }) => {
                if let Err(msg) = self.check_options(&options) {
                    writeln!(w, "ERR {msg}")?;
                } else {
                    self.scatter_and_respond(line, &spec.order_by, &mut w)?;
                }
            }
        }
        Ok(Reply::Continue)
    }
}

/// Serves `router` on `addr` under the default frontend tunables.
pub fn serve_router(router: Arc<Router>, addr: &str) -> io::Result<ServerHandle> {
    serve_router_with(router, addr, ServerConfig::default())
}

/// [`serve_router`] with explicit frontend tunables — the same
/// [`ServerConfig`] (poll tick, request-line cap) as qppt-server, because
/// it is literally the same frontend.
pub fn serve_router_with(
    router: Arc<Router>,
    addr: &str,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    serve_lines(router, addr, config)
}

/// Scatter-phase send: a pooled connection if possible, else the one
/// bounded retry on a fresh dial (idle conns are cleared first — they date
/// from before whatever broke).
fn send_request(pool: &ShardPool, line: &str) -> SendOutcome {
    let first = pool
        .checkout()
        .and_then(|mut c| c.send_line(line).map(|()| c));
    match first {
        Ok(conn) => SendOutcome::Sent {
            conn,
            retried: false,
        },
        Err(_) => {
            pool.clear();
            match pool.dial().and_then(|mut c| c.send_line(line).map(|()| c)) {
                Ok(conn) => SendOutcome::Sent {
                    conn,
                    retried: true,
                },
                Err(e) => SendOutcome::Failed(e.to_string()),
            }
        }
    }
}

/// Gather-phase read with the retry budget: a transport/protocol failure
/// on a not-yet-retried shard gets one fresh dial + resend + reread (the
/// request is an idempotent read). A shard `ERR` is a clean, complete
/// exchange — the connection is checked back in and the error surfaces as
/// [`GatherError::Query`].
fn exchange<T>(
    pool: &ShardPool,
    sent: SendOutcome,
    line: &str,
    read: impl Fn(&mut ShardConn) -> Result<T, ClientError>,
) -> Result<T, GatherError> {
    let (mut conn, retried) = match sent {
        SendOutcome::Sent { conn, retried } => (conn, retried),
        SendOutcome::Failed(detail) => return Err(GatherError::Unavailable(detail)),
    };
    match read(&mut conn) {
        Ok(v) => {
            pool.checkin(conn);
            Ok(v)
        }
        Err(ClientError::Server(msg)) => {
            pool.checkin(conn);
            Err(GatherError::Query(msg))
        }
        Err(e) => {
            if retried {
                return Err(GatherError::Unavailable(e.to_string()));
            }
            pool.clear();
            let fresh = pool.dial().and_then(|mut c| c.send_line(line).map(|()| c));
            match fresh {
                Err(e2) => Err(GatherError::Unavailable(e2.to_string())),
                Ok(mut c2) => match read(&mut c2) {
                    Ok(v) => {
                        pool.checkin(c2);
                        Ok(v)
                    }
                    Err(ClientError::Server(msg)) => {
                        pool.checkin(c2);
                        Err(GatherError::Query(msg))
                    }
                    Err(e2) => Err(GatherError::Unavailable(e2.to_string())),
                },
            }
        }
    }
}

/// Reads one complete `PARTIAL` response off a shard connection.
fn read_partial_response(conn: &mut ShardConn) -> Result<Gathered, ClientError> {
    let status = conn.read_status()?;
    let rows = parse_partial_status(&status).ok_or_else(|| {
        ClientError::Protocol(format!("expected a partial status, got: {status}"))
    })?;
    let (partial, stats) = read_partial_body(conn.reader(), rows)?;
    Ok(Gathered { partial, stats })
}
