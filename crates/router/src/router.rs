//! The router proper: verb dispatch, scatter/gather over the replicated
//! shard map, failover, and the deterministic merge.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use qppt_core::{fingerprint_query, ExecStats, OpStats, PartialAggregate, PlanOptions};
use qppt_obs::{merge_exposition, SlowEntry, SpanRec, Trace};
use qppt_par::merge_partial_aggregates;
use qppt_server::protocol::{
    apply_overrides, parse_partial_status, parse_request, read_partial_body, read_text_body,
    write_run_response, write_slow_response, CacheCmd, ClientError, Request, ServedStats,
    TraceMode, MODE_KEY, TRACE_KEY,
};
use qppt_server::{serve_lines, LineService, Reply, RunControls, ServerConfig, ServerHandle};
use qppt_ssb::queries;
use qppt_storage::{OrderKey, QueryResult, QuerySpec};

use crate::cache::{
    parse_versions_field, render_router_cache_metrics, render_router_cache_stats, CachedMerged,
    CachedPartial, FleetKey, RouterCache, RouterCacheConfig,
};
use crate::map::{Backoff, MapCell, RangeReplicas, Replica, ShardMap};
use crate::obs::RouterObs;
use crate::pool::ShardConn;

/// Router tunables: the replicated fleet plus transport, failover, and
/// health-probe limits.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Replica addresses per range, **in range order** — every address in
    /// `fleet[i]` must be a server started with `--shard i/n`. Parse a
    /// `--fleet` spec with [`crate::map::parse_fleet`].
    pub fleet: Vec<Vec<String>>,
    /// Per-dial TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-read socket timeout — a replica that stops mid-response fails
    /// the attempt (and the request fails over) instead of hanging the
    /// client.
    pub read_timeout: Duration,
    /// Idle pooled connections kept per replica.
    pub conns_per_shard: usize,
    /// Per-request cap on failover attempts, shared across all ranges of
    /// one request — bounds worst-case added latency.
    pub retry_budget: usize,
    /// Base delay of the capped-exponential failover backoff.
    pub retry_backoff: Duration,
    /// Ceiling of the failover backoff.
    pub retry_backoff_cap: Duration,
    /// How often the background health prober scans for due suspects
    /// (also the base of the per-replica probe backoff).
    pub probe_interval: Duration,
    /// Ceiling of the per-replica probe backoff.
    pub probe_backoff_cap: Duration,
    /// Fraction of *organic* (client-untraced) `RUN`/`QUERY` requests the
    /// router promotes to `trace=on` (`--trace-sample-rate`). Sampling is
    /// deterministic — every ⌈1/p⌉-th untraced request by arrival order —
    /// so tests can pin it (`1.0` traces everything, `0.0` disables).
    /// Client-pinned `trace=` options always win and never consume a
    /// sampling tick.
    pub trace_sample_rate: f64,
    /// The router-side result cache: tier budgets, the version-probe
    /// staleness bound, and the on/off switch (`--no-router-cache`).
    pub cache: RouterCacheConfig,
}

impl RouterConfig {
    /// Single-replica fleet (the pre-replication deployment shape):
    /// shard `i` is the sole owner of range `i`.
    pub fn new(shard_addrs: Vec<String>) -> Self {
        Self::with_fleet(shard_addrs.into_iter().map(|a| vec![a]).collect())
    }

    /// Replicated fleet. Defaults: 5 s connect, 60 s read, 4 pooled
    /// connections per replica, 4 failover attempts per request backed
    /// off 10 ms → 500 ms, probes every 200 ms backed off to 5 s.
    pub fn with_fleet(fleet: Vec<Vec<String>>) -> Self {
        Self {
            fleet,
            connect_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(60),
            conns_per_shard: 4,
            retry_budget: 4,
            retry_backoff: Duration::from_millis(10),
            retry_backoff_cap: Duration::from_millis(500),
            probe_interval: Duration::from_millis(200),
            probe_backoff_cap: Duration::from_secs(5),
            trace_sample_rate: 0.0,
            cache: RouterCacheConfig::default(),
        }
    }
}

/// Converts a sampling rate into the deterministic stride: sample every
/// `n`-th untraced request, `None` when sampling is off. Rates above 1.0
/// clamp to "every request"; rates at or below 0.0 (and non-finite
/// values) disable sampling.
fn sample_stride(rate: f64) -> Option<u64> {
    if !rate.is_finite() || rate <= 0.0 {
        return None;
    }
    Some((1.0 / rate.min(1.0)).round().max(1.0) as u64)
}

/// Router-side failure of one request.
#[derive(Debug)]
pub enum RouterError {
    /// No replica of one range could complete the exchange — every
    /// candidate failed or the retry budget ran out. Rendered on the wire
    /// as `ERR range <i> unavailable (<detail>)`.
    RangeUnavailable { range: usize, detail: String },
    /// The shards answered `ERR` (a query/validation error, relayed with
    /// a `shard <i> replica <j>:` prefix), or their partials disagreed
    /// structurally.
    Query(String),
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RangeUnavailable { range, detail } => {
                write!(f, "range {range} unavailable ({detail})")
            }
            Self::Query(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RouterError {}

/// One range's gathered partial plus its served statistics.
struct Gathered {
    partial: PartialAggregate,
    stats: ServedStats,
}

/// Per-range failure before it is attributed to a range index.
enum GatherError {
    Query(String),
    Unavailable(String),
}

impl GatherError {
    fn at(self, range: usize) -> RouterError {
        match self {
            Self::Query(msg) => RouterError::Query(msg),
            Self::Unavailable(detail) => RouterError::RangeUnavailable { range, detail },
        }
    }
}

/// A request line sent (or not) to one range's preferred replica during
/// the scatter phase.
enum SendOutcome {
    /// The line is in flight on `replica`; `reused` records whether the
    /// connection came from the idle pool (a later read failure is then
    /// possibly a stale conn, not a dead replica).
    Sent {
        replica: usize,
        conn: ShardConn,
        reused: bool,
    },
    /// The send itself failed. `stale` is true when it failed on a reused
    /// pooled connection — the replica deserves one fresh-dial retry
    /// before being convicted.
    Failed {
        replica: usize,
        detail: String,
        stale: bool,
    },
}

/// Per-request failover accounting: the retry budget shared across every
/// range of one scatter.
struct RetryState {
    budget: usize,
}

/// State shared between the router proper and its background health
/// prober.
struct Shared {
    map: MapCell,
    /// The router-side result cache — shared with the prober, which
    /// piggybacks version refreshes on its health scans.
    cache: Arc<RouterCache>,
    /// Set by [`Router::with_obs`]; the prober reads it lazily so the
    /// builder-style attach still works after the thread has started.
    obs: OnceLock<Arc<RouterObs>>,
    stop: AtomicBool,
    probe_interval: Duration,
    probe_backoff_cap: Duration,
    connect_timeout: Duration,
    read_timeout: Duration,
    conns_per_replica: usize,
}

/// The scatter/gather router over a replicated, health-checked fleet.
/// Implements [`LineService`], so [`serve_router`] gives it the exact
/// same TCP frontend (length-capped lines, drain-and-`ERR`, graceful
/// shutdown) as the shards themselves.
pub struct Router {
    shared: Arc<Shared>,
    /// The SSB named-query registry — resolved locally so the router knows
    /// each alias's ORDER BY for the merge (and can reject unknown names
    /// without touching the fleet).
    queries: BTreeMap<String, QuerySpec>,
    started: Instant,
    obs: Option<Arc<RouterObs>>,
    retry_budget: usize,
    backoff_base: Duration,
    backoff_cap: Duration,
    /// Trace every `n`-th organic request (`--trace-sample-rate`); `None`
    /// disables sampling.
    trace_sample_every: Option<u64>,
    /// Arrival counter of *untraced* `RUN`/`QUERY` requests — the
    /// deterministic clock the sampler ticks on.
    sample_seq: AtomicU64,
    prober: Option<thread::JoinHandle<()>>,
}

impl Router {
    /// Builds the router and starts its health prober. Panics if the
    /// fleet is empty or any range has no replicas — a router without
    /// owners cannot answer anything.
    pub fn new(config: RouterConfig) -> Self {
        assert!(
            !config.fleet.is_empty(),
            "RouterConfig.fleet must name at least one range"
        );
        assert!(
            config.fleet.iter().all(|r| !r.is_empty()),
            "every range needs at least one replica address"
        );
        let map = ShardMap::from_fleet(
            &config.fleet,
            config.conns_per_shard,
            config.connect_timeout,
            config.read_timeout,
        );
        let shared = Arc::new(Shared {
            map: MapCell::new(map),
            cache: Arc::new(RouterCache::new(config.cache)),
            obs: OnceLock::new(),
            stop: AtomicBool::new(false),
            probe_interval: config.probe_interval,
            probe_backoff_cap: config.probe_backoff_cap,
            connect_timeout: config.connect_timeout,
            read_timeout: config.read_timeout,
            conns_per_replica: config.conns_per_shard,
        });
        let prober = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("qppt-router-prober".to_string())
                .spawn(move || prober_loop(&shared))
                .ok()
        };
        let queries = queries::all_queries()
            .into_iter()
            .map(|q| (q.id.to_ascii_lowercase(), q))
            .collect();
        Self {
            shared,
            queries,
            started: Instant::now(),
            obs: None,
            retry_budget: config.retry_budget,
            backoff_base: config.retry_backoff,
            backoff_cap: config.retry_backoff_cap,
            trace_sample_every: sample_stride(config.trace_sample_rate),
            sample_seq: AtomicU64::new(0),
            prober,
        }
    }

    /// Attaches observability state (builder-style): per-verb request
    /// metrics, per-range RTT histograms, failover/health gauges, the
    /// merged `METRICS` exposition, and the slow-query log. Without it
    /// the router serves uninstrumented (`--no-obs`) and `METRICS`
    /// answers `ERR`.
    pub fn with_obs(mut self, obs: Arc<RouterObs>) -> Self {
        let map = self.shared.map.load();
        obs.set_replicas_live(map.live_replicas());
        let _ = self.shared.obs.set(Arc::clone(&obs));
        self.obs = Some(obs);
        self
    }

    /// The attached observability state, if any.
    pub fn obs(&self) -> Option<&Arc<RouterObs>> {
        self.obs.as_ref()
    }

    /// Seconds since this router was constructed (the `INFO`
    /// `uptime_secs=` field).
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The crate version reported as `build=` by `INFO`.
    pub fn build() -> &'static str {
        env!("CARGO_PKG_VERSION")
    }

    /// Number of ranges fronted.
    pub fn shard_count(&self) -> usize {
        self.shared.map.load().range_count()
    }

    /// The router-side result cache (its statistics back the `router_*`
    /// fields of the routed `CACHE STATS` line).
    pub fn cache(&self) -> &RouterCache {
        &self.shared.cache
    }

    /// Atomically installs a new fleet layout between requests: in-flight
    /// requests finish against the map they loaded, subsequent requests
    /// see the new one. Replica health restarts live.
    pub fn swap_fleet(&self, fleet: Vec<Vec<String>>) -> Result<(), String> {
        if fleet.is_empty() {
            return Err("fleet must name at least one range".to_string());
        }
        if fleet.iter().any(|r| r.is_empty()) {
            return Err("every range needs at least one replica address".to_string());
        }
        let map = ShardMap::from_fleet(
            &fleet,
            self.shared.conns_per_replica,
            self.shared.connect_timeout,
            self.shared.read_timeout,
        );
        self.shared.map.swap(map);
        if let Some(o) = &self.obs {
            o.set_replicas_live(self.shared.map.load().live_replicas());
        }
        Ok(())
    }

    /// Blocks until every replica answers `PING` (dialing fresh each
    /// attempt) or `timeout` elapses. Replicas still unreachable at the
    /// deadline are marked suspect and left to the prober — the router
    /// starts as long as **every range keeps at least one live replica**;
    /// otherwise the range's error is returned.
    pub fn wait_for_shards(&self, timeout: Duration) -> Result<(), RouterError> {
        let map = self.shared.map.load();
        let deadline = Instant::now() + timeout;
        let mut pending: Vec<(usize, usize)> = map
            .ranges()
            .iter()
            .enumerate()
            .flat_map(|(ri, range)| (0..range.len()).map(move |rj| (ri, rj)))
            .collect();
        let mut last_err: BTreeMap<usize, String> = BTreeMap::new();
        loop {
            pending.retain(|&(ri, rj)| {
                let rep = map.range(ri).replica(rj);
                match probe_replica(rep) {
                    Ok(conn) => {
                        rep.pool().checkin(conn);
                        false
                    }
                    Err(detail) => {
                        last_err.insert(ri, detail);
                        true
                    }
                }
            });
            if pending.is_empty() {
                return Ok(());
            }
            if Instant::now() >= deadline {
                break;
            }
            thread::sleep(Duration::from_millis(100));
        }
        let now = map.now_micros();
        for &(ri, rj) in &pending {
            map.range(ri).replica(rj).mark_suspect(
                now,
                self.shared.probe_interval,
                self.shared.probe_backoff_cap,
            );
        }
        self.publish_health(map);
        for (ri, range) in map.ranges().iter().enumerate() {
            if range.live_count() == 0 {
                let detail = last_err
                    .remove(&ri)
                    .unwrap_or_else(|| "no replica answered PING".to_string());
                return Err(RouterError::RangeUnavailable { range: ri, detail });
            }
        }
        Ok(())
    }

    /// Publishes the fleet-wide live-replica count after a health flip.
    fn publish_health(&self, map: &ShardMap) {
        if let Some(o) = &self.obs {
            o.set_replicas_live(map.live_replicas());
        }
    }

    /// Marks a replica suspect after a fresh-connection failure (the
    /// prober takes over its recovery) and refreshes the live gauge.
    fn convict(&self, map: &ShardMap, ri: usize, rj: usize) {
        let flipped = map.range(ri).replica(rj).mark_suspect(
            map.now_micros(),
            self.shared.probe_interval,
            self.shared.probe_backoff_cap,
        );
        if flipped {
            self.publish_health(map);
        }
    }

    /// Scatter-phase send to one range's preferred replica: a pooled
    /// connection if possible, else a fresh dial. Failures are deferred
    /// to [`gather_range`](Self::gather_range), which owns failover.
    fn send_to_range(&self, range: &RangeReplicas, line: &str) -> SendOutcome {
        let p = range.preferred();
        match range.replica(p).pool().checkout() {
            Err(e) => SendOutcome::Failed {
                replica: p,
                detail: e.to_string(),
                stale: false,
            },
            Ok((mut conn, reused)) => match conn.send_line(line) {
                Ok(()) => SendOutcome::Sent {
                    replica: p,
                    conn,
                    reused,
                },
                Err(e) => SendOutcome::Failed {
                    replica: p,
                    detail: e.to_string(),
                    stale: reused,
                },
            },
        }
    }

    /// Gather-phase read with failover: consumes the in-flight response
    /// and, on a transport/protocol failure, walks the range's remaining
    /// replicas (the first replica again when its failure smelled like a
    /// stale pooled conn, then live siblings, then suspects as a last
    /// resort) under the request's shared retry budget, sleeping the
    /// capped-exponential jittered backoff before each attempt. A shard
    /// `ERR` is a real answer — relayed as a query error with its
    /// `shard <i> replica <j>:` origin, and the connection is dropped
    /// (an `ERR` status does not prove the stream is drained). Returns
    /// the payload plus the ordinal of the replica that answered.
    fn gather_range<T>(
        &self,
        map: &ShardMap,
        ri: usize,
        sent: SendOutcome,
        line: &str,
        read: impl Fn(&mut ShardConn) -> Result<T, ClientError>,
        retry: &mut RetryState,
    ) -> Result<(T, usize), GatherError> {
        let range = map.range(ri);
        let obs = self.obs.as_deref();
        let first;
        let mut stale_retry = false;
        let mut last_detail;
        match sent {
            SendOutcome::Sent {
                replica,
                mut conn,
                reused,
            } => {
                first = replica;
                match read(&mut conn) {
                    Ok(v) => {
                        let rep = range.replica(replica);
                        rep.pool().checkin(conn);
                        if rep.mark_live() {
                            self.publish_health(map);
                        }
                        return Ok((v, replica));
                    }
                    Err(ClientError::Server(msg)) => {
                        return Err(GatherError::Query(format!(
                            "shard {ri} replica {replica}: {msg}"
                        )));
                    }
                    Err(e) => {
                        last_detail = e.to_string();
                        if reused {
                            stale_retry = true;
                        } else {
                            self.convict(map, ri, replica);
                        }
                    }
                }
            }
            SendOutcome::Failed {
                replica,
                detail,
                stale,
            } => {
                first = replica;
                last_detail = detail;
                if stale {
                    stale_retry = true;
                } else {
                    self.convict(map, ri, replica);
                }
            }
        }
        // Candidate order: the possibly-stale first replica gets one
        // fresh-dial retry before conviction; then untried live siblings
        // in replica order; then untried suspects (someone may have come
        // back before the prober noticed).
        let mut candidates: Vec<usize> = Vec::with_capacity(range.len() + 1);
        if stale_retry {
            candidates.push(first);
        }
        let (live, suspect): (Vec<usize>, Vec<usize>) = (0..range.len())
            .filter(|&j| j != first)
            .partition(|&j| range.replica(j).is_live());
        candidates.extend(live);
        candidates.extend(suspect);
        let mut backoff = Backoff::new(self.backoff_base, self.backoff_cap, next_backoff_seed());
        for cand in candidates {
            if retry.budget == 0 {
                return Err(GatherError::Unavailable(format!(
                    "retry budget exhausted; last error: {last_detail}"
                )));
            }
            retry.budget -= 1;
            thread::sleep(backoff.next_delay());
            if let Some(o) = obs {
                o.note_retry();
            }
            let rep = range.replica(cand);
            // Idle conns predate whatever broke — dial fresh.
            rep.pool().clear();
            match rep.pool().dial().and_then(|mut c| {
                c.send_line(line)?;
                Ok(c)
            }) {
                Err(e) => {
                    last_detail = e.to_string();
                    self.convict(map, ri, cand);
                }
                Ok(mut conn) => {
                    if let Some(o) = obs {
                        o.note_reconnect();
                    }
                    match read(&mut conn) {
                        Ok(v) => {
                            rep.pool().checkin(conn);
                            if rep.mark_live() {
                                self.publish_health(map);
                            }
                            if cand != first {
                                if let Some(o) = obs {
                                    o.note_failover();
                                }
                            }
                            return Ok((v, cand));
                        }
                        Err(ClientError::Server(msg)) => {
                            return Err(GatherError::Query(format!(
                                "shard {ri} replica {cand}: {msg}"
                            )));
                        }
                        Err(e) => {
                            last_detail = e.to_string();
                            self.convict(map, ri, cand);
                        }
                    }
                }
            }
        }
        Err(GatherError::Unavailable(format!(
            "no live replica; last error: {last_detail}"
        )))
    }

    /// Scatters `forward` (a `RUN`/`QUERY` line already carrying
    /// `mode=partial`) to every range, gathers the partials in range
    /// order (failing over inside each range as needed), merges them, and
    /// applies `order_by` — the merged result is byte-identical to a
    /// single node running the same query, whichever replicas answered.
    pub fn scatter_partial(
        &self,
        forward: &str,
        order_by: &[OrderKey],
    ) -> Result<(QueryResult, ExecStats, usize), RouterError> {
        self.scatter_partial_traced(forward, order_by, None)
    }

    /// [`scatter_partial`](Self::scatter_partial) with request-scoped
    /// tracing: the gather wall time becomes a `scatter` span, each
    /// range's own span tree (carried back on the partial response) is
    /// grafted under it as `shard<i>`, and the merge gets its own span.
    /// Result bytes are identical with and without a trace.
    fn scatter_partial_traced(
        &self,
        forward: &str,
        order_by: &[OrderKey],
        mut trace: Option<&mut Trace>,
    ) -> Result<(QueryResult, ExecStats, usize), RouterError> {
        let started = Instant::now();
        let obs = self.obs.as_deref();
        let map = self.shared.map.load();
        let mut retry = RetryState {
            budget: self.retry_budget,
        };
        // Scatter first: every range has the request in flight before any
        // response is read, so shards execute concurrently.
        let in_flight: Vec<SendOutcome> = map
            .ranges()
            .iter()
            .map(|range| self.send_to_range(range, forward))
            .collect();
        // Gather in range order (the deterministic merge order). Every
        // in-flight response is consumed even after an earlier range
        // failed, so surviving pooled connections stay synchronized.
        let mut query_err: Option<String> = None;
        let mut unavailable: Option<(usize, String)> = None;
        let mut gathered: Vec<(Gathered, usize)> = Vec::with_capacity(map.range_count());
        for (i, sent) in in_flight.into_iter().enumerate() {
            match self.gather_range(map, i, sent, forward, read_partial_response, &mut retry) {
                Ok((g, replica)) => {
                    if let Some(o) = obs {
                        o.record_rtt(i, elapsed_micros(started));
                        o.note_replica_request(i, replica);
                    }
                    gathered.push((g, replica));
                }
                Err(GatherError::Query(msg)) => {
                    if query_err.is_none() {
                        query_err = Some(msg);
                    }
                }
                Err(GatherError::Unavailable(detail)) => {
                    if unavailable.is_none() {
                        unavailable = Some((i, detail));
                    }
                }
            }
        }
        // A query error is deterministic across the fleet (same spec, same
        // replicated dims) — relay it even if some other range was also
        // down; a partial gather is *never* served as a complete answer.
        if let Some(msg) = query_err {
            return Err(RouterError::Query(msg));
        }
        if let Some((range, detail)) = unavailable {
            return Err(RouterError::RangeUnavailable { range, detail });
        }
        if let Some(t) = trace.as_deref_mut() {
            // The scatter span's wall time covers every gather, so each
            // grafted shard tree's root (the shard's request total, which
            // excludes the network) stays ≤ its parent.
            let scatter = t.add(t.root(), "scatter", elapsed_micros(started));
            for (i, (g, _)) in gathered.iter().enumerate() {
                if !g.stats.spans.is_empty() {
                    // A malformed shard tree is dropped, never fatal —
                    // tracing must not fail a query that produced rows.
                    let _ = t.graft(scatter, &format!("shard{i}"), &g.stats.spans);
                }
            }
        }

        let workers = gathered
            .iter()
            .map(|(g, _)| g.stats.workers)
            .max()
            .unwrap_or(1);
        let mut stats = ExecStats::default();
        for (i, (g, replica)) in gathered.iter().enumerate() {
            stats.push(OpStats {
                label: format!(
                    "gather: shard {i} replica {replica} @ {}",
                    map.range(i).replica(*replica).addr()
                ),
                out_keys: g.partial.group_count(),
                out_tuples: g.partial.group_count(),
                index_kind: "wire".to_string(),
                memory_bytes: 0,
                micros: g.stats.total_micros,
            });
        }
        let merge_started = Instant::now();
        let parts: Vec<PartialAggregate> = gathered.into_iter().map(|(g, _)| g.partial).collect();
        let merged = merge_partial_aggregates(parts)
            .map_err(|e| RouterError::Query(e.to_string()))?
            .expect("at least one range gathered");
        let result = merged.into_result(order_by);
        let merge_micros = elapsed_micros(merge_started);
        if let Some(o) = obs {
            o.record_merge(merge_micros);
        }
        if let Some(t) = trace {
            t.add(t.root(), "merge", merge_micros);
        }
        stats.total_micros = started.elapsed().as_micros();
        Ok((result, stats, workers))
    }

    /// Sends a single-line-response command (`INFO`, `CACHE STATS`) to
    /// one replica of every range (failing over as needed); returns the
    /// `OK` payloads plus the answering replica's ordinal, in range
    /// order.
    fn fanout_status(&self, line: &str) -> Result<Vec<(String, usize)>, RouterError> {
        let map = self.shared.map.load();
        let mut retry = RetryState {
            budget: self.retry_budget,
        };
        let in_flight: Vec<SendOutcome> = map
            .ranges()
            .iter()
            .map(|range| self.send_to_range(range, line))
            .collect();
        let mut payloads = Vec::with_capacity(map.range_count());
        for (i, sent) in in_flight.into_iter().enumerate() {
            let read = |c: &mut ShardConn| c.read_status();
            payloads.push(
                self.gather_range(map, i, sent, line, read, &mut retry)
                    .map_err(|e| e.at(i))?,
            );
        }
        Ok(payloads)
    }

    /// Sends a single-line-response command to **every replica** of every
    /// range (`CACHE CLEAR` must not leave a sibling's cache stale).
    /// Suspect or failing replicas are best-effort; the call errors only
    /// when some range had **zero** successes.
    fn broadcast_status(&self, line: &str) -> Result<(), RouterError> {
        let map = self.shared.map.load();
        for (ri, range) in map.ranges().iter().enumerate() {
            let mut ok = false;
            let mut last_detail = String::from("no replica reachable");
            for (rj, rep) in range.replicas().iter().enumerate() {
                // Always a fresh dial: broadcasts are rare, and a stale
                // pooled conn must not fake a failure here.
                let attempt = rep
                    .pool()
                    .dial()
                    .map_err(ClientError::Io)
                    .and_then(|mut c| {
                        c.send_line(line).map_err(ClientError::Io)?;
                        c.read_status()?;
                        Ok(c)
                    });
                match attempt {
                    Ok(conn) => {
                        rep.pool().checkin(conn);
                        ok = true;
                    }
                    Err(ClientError::Server(msg)) => {
                        return Err(RouterError::Query(format!(
                            "shard {ri} replica {rj}: {msg}"
                        )));
                    }
                    Err(e) => last_detail = e.to_string(),
                }
            }
            if !ok {
                return Err(RouterError::RangeUnavailable {
                    range: ri,
                    detail: last_detail,
                });
            }
        }
        Ok(())
    }

    /// Fans `METRICS` out to one replica per range; returns `(range id,
    /// exposition text)` pairs in range order, ready for
    /// [`merge_exposition`](qppt_obs::merge_exposition).
    fn fanout_metrics(&self) -> Result<Vec<(String, String)>, RouterError> {
        let map = self.shared.map.load();
        let mut retry = RetryState {
            budget: self.retry_budget,
        };
        let in_flight: Vec<SendOutcome> = map
            .ranges()
            .iter()
            .map(|range| self.send_to_range(range, "METRICS"))
            .collect();
        let mut out = Vec::with_capacity(map.range_count());
        for (i, sent) in in_flight.into_iter().enumerate() {
            let read = |c: &mut ShardConn| {
                c.read_status()?;
                let body = read_text_body(c.reader())?;
                let mut text = body.join("\n");
                text.push('\n');
                Ok(text)
            };
            let (text, _) = self
                .gather_range(map, i, sent, "METRICS", read, &mut retry)
                .map_err(|e| e.at(i))?;
            out.push((i.to_string(), text));
        }
        Ok(out)
    }

    /// `METRICS` at the router: the merged fleet exposition — every range
    /// family re-labeled `shard="<i>"` plus summed `shard="fleet"`
    /// samples — followed by the router's own `qppt_router_*` families.
    fn handle_metrics(&self, w: &mut dyn Write) -> io::Result<()> {
        let Some(obs) = &self.obs else {
            return writeln!(w, "ERR metrics disabled (--no-obs)");
        };
        match self.fanout_metrics() {
            Err(e) => writeln!(w, "ERR {e}"),
            Ok(shard_expos) => match merge_exposition(&shard_expos) {
                Err(e) => writeln!(w, "ERR metrics merge failed ({e})"),
                Ok(mut merged) => {
                    merged.push_str(&obs.render());
                    merged.push_str(&render_router_cache_metrics(&self.shared.cache.stats()));
                    writeln!(w, "OK metrics")?;
                    for l in merged.lines() {
                        writeln!(w, "{l}")?;
                    }
                    writeln!(w, "END")
                }
            },
        }
    }

    /// Forwards a text-bodied command (`LIST`, `EXPLAIN`) to range 0
    /// (failing over among its replicas) and relays the response. Plans
    /// and the query registry are identical on every shard (same specs,
    /// same replicated dimension tables), so one range speaks for the
    /// fleet.
    fn relay_text(&self, line: &str, w: &mut dyn Write) -> io::Result<()> {
        let map = self.shared.map.load();
        let mut retry = RetryState {
            budget: self.retry_budget,
        };
        let sent = self.send_to_range(map.range(0), line);
        let read = |c: &mut ShardConn| {
            let status = c.read_status()?;
            let body = read_text_body(c.reader())?;
            Ok((status, body))
        };
        match self.gather_range(map, 0, sent, line, read, &mut retry) {
            Err(e) => writeln!(w, "ERR {}", e.at(0)),
            Ok(((status, body), _)) => {
                writeln!(w, "OK {status}")?;
                for l in &body {
                    writeln!(w, "{l}")?;
                }
                writeln!(w, "END")
            }
        }
    }

    /// `INFO` fan-out: fleet-level `shards=`/`rows=` (summed) and replica
    /// counts, the shared descriptor fields from range 0, the router's
    /// own `uptime_secs=`/`build=` plus the fleet's
    /// `uptime_min_secs=`/`uptime_max_secs=` spread, and the per-range
    /// map (`shard<i>=<answering replica addr> rows<i>=<n>
    /// replicas<i>=<size>`).
    fn handle_info(&self, w: &mut dyn Write) -> io::Result<()> {
        let map = self.shared.map.load();
        match self.fanout_status("INFO") {
            Err(e) => writeln!(w, "ERR {e}"),
            Ok(lines) => {
                let field = |l: &str, key: &str| -> Option<u64> {
                    l.split_whitespace()
                        .find_map(|kv| kv.strip_prefix(key))
                        .and_then(|v| v.strip_prefix('='))
                        .and_then(|v| v.parse().ok())
                };
                let rows: Vec<u64> = lines
                    .iter()
                    .map(|(l, _)| field(l, "rows").unwrap_or(0))
                    .collect();
                let uptimes: Vec<u64> = lines
                    .iter()
                    .filter_map(|(l, _)| field(l, "uptime_secs"))
                    .collect();
                write!(
                    w,
                    "OK shards={} rows={} replicas={} replicas_live={}",
                    map.range_count(),
                    rows.iter().sum::<u64>(),
                    map.total_replicas(),
                    map.live_replicas(),
                )?;
                for kv in lines[0].0.split_whitespace() {
                    match kv.split_once('=') {
                        // Fleet-level, per-shard, or router-level fields
                        // replace these range-0 values.
                        Some((
                            "rows" | "shard" | "shards" | "replica" | "uptime_secs" | "build"
                            | "versions",
                            _,
                        )) => {}
                        Some(_) => write!(w, " {kv}")?,
                        None => {}
                    }
                }
                write!(
                    w,
                    " uptime_secs={} uptime_min_secs={} uptime_max_secs={} build={}",
                    self.uptime_secs(),
                    uptimes.iter().min().copied().unwrap_or(0),
                    uptimes.iter().max().copied().unwrap_or(0),
                    Self::build(),
                )?;
                for (i, ((_, replica), n)) in lines.iter().zip(&rows).enumerate() {
                    let range = map.range(i);
                    write!(
                        w,
                        " shard{i}={} rows{i}={n} replicas{i}={}",
                        range.replica(*replica).addr(),
                        range.len(),
                    )?;
                }
                writeln!(w)
            }
        }
    }

    /// `CACHE` fan-out: `STATS` sums every per-tier counter across one
    /// replica per range (appending `shards=N` and the router's own
    /// `router_result_*`/`router_partial_*` tiers as distinct fields —
    /// never summed into the shard counters); `CLEAR`/`CLEAR dims`
    /// broadcasts to **every replica** of every range so no sibling keeps
    /// a stale cache, and drops the router's own tiers first — routed
    /// results compose shard work, so they go with it.
    fn handle_cache(&self, cmd: CacheCmd, w: &mut dyn Write) -> io::Result<()> {
        let line = match cmd {
            CacheCmd::Stats => "CACHE STATS",
            CacheCmd::Clear => "CACHE CLEAR",
            CacheCmd::ClearDims => "CACHE CLEAR dims",
        };
        match cmd {
            CacheCmd::Clear | CacheCmd::ClearDims => {
                // Local tiers first, unconditionally: even if some shard
                // is unreachable, a cleared router tier is merely cold,
                // never stale.
                self.shared.cache.clear();
                match self.broadcast_status(line) {
                    Err(e) => writeln!(w, "ERR {e}"),
                    Ok(()) => match cmd {
                        CacheCmd::ClearDims => writeln!(w, "OK cleared dims"),
                        _ => writeln!(w, "OK cleared"),
                    },
                }
            }
            CacheCmd::Stats => match self.fanout_status(line) {
                Err(e) => writeln!(w, "ERR {e}"),
                Ok(lines) => {
                    // Sum counters key-wise, keeping range 0's field order
                    // so the line shape matches a single node's.
                    let mut keys: Vec<&str> = Vec::new();
                    let mut sums: BTreeMap<&str, u64> = BTreeMap::new();
                    for (l, _) in &lines {
                        for kv in l.split_whitespace() {
                            if let Some((k, v)) = kv.split_once('=') {
                                if !sums.contains_key(k) {
                                    keys.push(k);
                                }
                                *sums.entry(k).or_insert(0) += v.parse::<u64>().unwrap_or(0);
                            }
                        }
                    }
                    write!(w, "OK")?;
                    for k in keys {
                        write!(w, " {k}={}", sums[k])?;
                    }
                    writeln!(
                        w,
                        " shards={} {}",
                        self.shard_count(),
                        render_router_cache_stats(&self.shared.cache.stats())
                    )
                }
            },
        }
    }

    /// Validates client options locally: `mode` is router-reserved, and
    /// anything `apply_overrides` would reject on a shard is rejected here
    /// without touching the fleet. Returns the normalized plan options
    /// (what the router-cache fingerprint covers) plus the request
    /// controls (the router acts on `trace=` and `cache=`).
    fn check_options(
        &self,
        options: &[(String, String)],
    ) -> Result<(PlanOptions, RunControls), String> {
        if options.iter().any(|(k, _)| k == MODE_KEY) {
            return Err(
                "option mode is reserved on the router (it always gathers partials)".to_string(),
            );
        }
        apply_overrides(PlanOptions::default(), options)
    }

    /// Scatters the client's own `RUN`/`QUERY` line (plus `mode=partial`,
    /// plus a pinned `trace=<id>` when the request is traced — appended
    /// *after* the client's options, so the later duplicate wins on the
    /// shards and every shard stamps its spans with the router's id) and
    /// writes the merged full response. The router's result cache fronts
    /// the scatter unless the client sent `cache=off` (which also reaches
    /// the shards via the forwarded line, so `off` means off fleet-wide).
    fn scatter_and_respond(
        &self,
        verb: &'static str,
        line: &str,
        spec: &QuerySpec,
        opts: &PlanOptions,
        controls: &RunControls,
        mut w: &mut dyn Write,
    ) -> io::Result<()> {
        let started = Instant::now();
        let trace_mode = self.sample_trace(controls.trace);
        let mut trace = make_trace(trace_mode);
        let forward = match &trace {
            Some(t) => format!("{line} {MODE_KEY}=partial {TRACE_KEY}={}", t.id()),
            None => format!("{line} {MODE_KEY}=partial"),
        };
        let gathered = if controls.use_cache && self.shared.cache.enabled() {
            self.scatter_cached(&forward, spec, opts, trace.as_mut())
        } else {
            self.scatter_partial_traced(&forward, &spec.order_by, trace.as_mut())
        };
        match gathered {
            Err(e) => writeln!(w, "ERR {e}"),
            Ok((result, stats, workers)) => {
                let outcome = router_outcome_of(&stats).to_string();
                let spans = finish_trace(trace, stats.total_micros);
                let out = write_run_response(&mut w, &result, &stats, workers, &spans);
                self.slow_log(verb, line, &outcome, &spans, started);
                out
            }
        }
    }

    /// The cached scatter (the routed hot path): establish a fresh-enough
    /// per-range version vector (probed state within the staleness bound,
    /// else an on-demand `INFO` probe), serve a merged-tier hit without
    /// touching any shard, otherwise scatter **only the ranges whose
    /// partial is not cached**, re-merge locally, and populate both tiers.
    /// Any probe failure falls back to the plain uncached scatter — the
    /// cache can make a query cheaper, never less available. Result bytes
    /// are identical to the uncached path on every outcome.
    fn scatter_cached(
        &self,
        forward: &str,
        spec: &QuerySpec,
        opts: &PlanOptions,
        mut trace: Option<&mut Trace>,
    ) -> Result<(QueryResult, ExecStats, usize), RouterError> {
        let cache = &self.shared.cache;
        let started = Instant::now();
        let obs = self.obs.as_deref();
        let map = self.shared.map.load();
        let generation = map.generation();
        let n = map.range_count();
        let qfp = fingerprint_query(spec, opts);

        let mut versions = cache.cached_versions(generation, n);
        for (ri, slot) in versions.iter_mut().enumerate() {
            if slot.is_none() {
                match self.probe_versions(map, ri) {
                    Some(vs) => {
                        cache.record_versions(generation, n, ri, vs.clone());
                        *slot = Some(vs);
                    }
                    // No version vector, no freshness proof — serve this
                    // request uncached rather than fail or stale-serve.
                    None => return self.scatter_partial_traced(forward, &spec.order_by, trace),
                }
            }
        }
        let versions: Vec<Vec<u64>> = versions.into_iter().flatten().collect();

        if let Some(hit) = cache.get_merged(&FleetKey::merged(qfp, generation, &versions)) {
            let mut stats = ExecStats::default();
            stats.push(router_cache_op(
                "router cache: result hit".to_string(),
                hit.result.rows.len(),
            ));
            if let Some(t) = trace.as_deref_mut() {
                t.add(t.root(), "router_cache", elapsed_micros(started));
            }
            stats.total_micros = started.elapsed().as_micros();
            return Ok((hit.result.clone(), stats, hit.workers));
        }

        let mut cached_parts: Vec<Option<Arc<CachedPartial>>> = (0..n)
            .map(|ri| cache.get_partial(&FleetKey::partial(qfp, ri, n, &versions[ri])))
            .collect();

        // Scatter the missing ranges first (they execute concurrently),
        // then gather in range order — the same discipline as the
        // uncached path, restricted to the ranges that need a shard.
        let mut retry = RetryState {
            budget: self.retry_budget,
        };
        let in_flight: Vec<(usize, SendOutcome)> = (0..n)
            .filter(|&ri| cached_parts[ri].is_none())
            .map(|ri| (ri, self.send_to_range(map.range(ri), forward)))
            .collect();
        let mut query_err: Option<String> = None;
        let mut unavailable: Option<(usize, String)> = None;
        let mut fresh: Vec<Option<(Gathered, usize)>> = (0..n).map(|_| None).collect();
        let any_scatter = !in_flight.is_empty();
        for (ri, sent) in in_flight {
            match self.gather_range(map, ri, sent, forward, read_partial_response, &mut retry) {
                Ok((g, replica)) => {
                    if let Some(o) = obs {
                        o.record_rtt(ri, elapsed_micros(started));
                        o.note_replica_request(ri, replica);
                    }
                    fresh[ri] = Some((g, replica));
                }
                Err(GatherError::Query(msg)) => {
                    if query_err.is_none() {
                        query_err = Some(msg);
                    }
                }
                Err(GatherError::Unavailable(detail)) => {
                    if unavailable.is_none() {
                        unavailable = Some((ri, detail));
                    }
                }
            }
        }
        if let Some(msg) = query_err {
            return Err(RouterError::Query(msg));
        }
        if let Some((range, detail)) = unavailable {
            return Err(RouterError::RangeUnavailable { range, detail });
        }
        if let Some(t) = trace.as_deref_mut() {
            if any_scatter {
                let scatter = t.add(t.root(), "scatter", elapsed_micros(started));
                for (i, slot) in fresh.iter().enumerate() {
                    if let Some((g, _)) = slot {
                        if !g.stats.spans.is_empty() {
                            let _ = t.graft(scatter, &format!("shard{i}"), &g.stats.spans);
                        }
                    }
                }
            }
        }

        // Assemble in range order: fresh gathers are cached under the
        // versions this request *probed* (possibly already superseded —
        // the next probe invalidates them, keeping staleness inside the
        // probe bound), cached partials are cloned in place.
        let mut stats = ExecStats::default();
        let mut parts: Vec<PartialAggregate> = Vec::with_capacity(n);
        let mut workers = 1usize;
        for ri in 0..n {
            if let Some((g, replica)) = fresh[ri].take() {
                workers = workers.max(g.stats.workers);
                stats.push(OpStats {
                    label: format!(
                        "gather: shard {ri} replica {replica} @ {}",
                        map.range(ri).replica(replica).addr()
                    ),
                    out_keys: g.partial.group_count(),
                    out_tuples: g.partial.group_count(),
                    index_kind: "wire".to_string(),
                    memory_bytes: 0,
                    micros: g.stats.total_micros,
                });
                cache.put_partial(
                    &FleetKey::partial(qfp, ri, n, &versions[ri]),
                    Arc::new(CachedPartial {
                        partial: g.partial.clone(),
                        workers: g.stats.workers,
                    }),
                );
                parts.push(g.partial);
            } else {
                let hit = cached_parts[ri].take().expect("range cached or gathered");
                workers = workers.max(hit.workers);
                stats.push(router_cache_op(
                    format!("router cache: partial hit (shard {ri})"),
                    hit.partial.group_count(),
                ));
                parts.push(hit.partial.clone());
            }
        }

        let merge_started = Instant::now();
        let merged = merge_partial_aggregates(parts)
            .map_err(|e| RouterError::Query(e.to_string()))?
            .expect("at least one range");
        let result = merged.into_result(&spec.order_by);
        let merge_micros = elapsed_micros(merge_started);
        if let Some(o) = obs {
            o.record_merge(merge_micros);
        }
        if let Some(t) = trace {
            t.add(t.root(), "merge", merge_micros);
        }
        cache.put_merged(
            &FleetKey::merged(qfp, generation, &versions),
            Arc::new(CachedMerged {
                result: result.clone(),
                workers,
            }),
        );
        stats.total_micros = started.elapsed().as_micros();
        Ok((result, stats, workers))
    }

    /// On-demand version probe: one `INFO` round-trip to range `ri`
    /// (with the usual in-range failover, under a probe-local budget).
    /// `None` when the range is unreachable or its `INFO` carries no
    /// parseable `versions=` field (an old server build).
    fn probe_versions(&self, map: &ShardMap, ri: usize) -> Option<Vec<u64>> {
        let mut retry = RetryState { budget: 1 };
        let sent = self.send_to_range(map.range(ri), "INFO");
        let read = |c: &mut ShardConn| c.read_status();
        match self.gather_range(map, ri, sent, "INFO", read, &mut retry) {
            Ok((status, _)) => parse_versions_field(&status),
            Err(_) => None,
        }
    }

    /// Applies `--trace-sample-rate` to one routed `RUN`/`QUERY`: an
    /// organic (untraced) request is promoted to `trace=on` when the
    /// untraced-arrival counter lands on the sampling stride — the first
    /// untraced request is always sampled, so a rate of `1.0` traces
    /// everything and tests can pin the behavior. A client that asked for
    /// a trace (or pinned an id) keeps its mode and does not tick the
    /// counter.
    fn sample_trace(&self, requested: TraceMode) -> TraceMode {
        if !matches!(requested, TraceMode::Off) {
            return requested;
        }
        let Some(every) = self.trace_sample_every else {
            return TraceMode::Off;
        };
        if self
            .sample_seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
        {
            TraceMode::On
        } else {
            TraceMode::Off
        }
    }

    /// Records a slow routed request in the ring served by the router's
    /// `METRICS SLOW` (and counts it) when its wall time reached the
    /// `--slow-query-micros` threshold.
    fn slow_log(
        &self,
        verb: &'static str,
        line: &str,
        outcome: &str,
        spans: &[SpanRec],
        started: Instant,
    ) {
        let Some(obs) = &self.obs else { return };
        let Some(threshold) = obs.slow_threshold() else {
            return;
        };
        let micros = elapsed_micros(started);
        if micros < threshold {
            return;
        }
        obs.note_slow();
        obs.slow_ring().push(SlowEntry {
            verb: verb.to_string(),
            line: line.to_string(),
            outcome: outcome.to_string(),
            micros,
            spans: spans.to_vec(),
        });
    }
}

/// Where a routed response came from, read back off its op list: the last
/// router-cache op names the tier outcome; a response with none was a
/// plain scatter/merge.
fn router_outcome_of(stats: &ExecStats) -> &str {
    stats
        .ops
        .iter()
        .rev()
        .find(|op| op.index_kind == "cache")
        .map(|op| op.label.as_str())
        .unwrap_or("routed")
}

/// An [`OpStats`] line marking a router-cache outcome on the response —
/// the same `index=cache` shape the shard tiers stamp, so clients parse
/// one convention.
fn router_cache_op(label: String, keys: usize) -> OpStats {
    OpStats {
        label,
        out_keys: keys,
        out_tuples: keys,
        index_kind: "cache".to_string(),
        memory_bytes: 0,
        micros: 0,
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
    }
}

/// The background health prober: scans the current map every
/// `probe_interval` for suspect replicas whose next probe is due, `PING`s
/// them over a fresh dial, and flips them back live on success — recovery
/// without waiting for organic traffic. Failures push the replica's next
/// probe out on its capped backoff schedule.
fn prober_loop(shared: &Shared) {
    let tick = Duration::from_millis(20).min(shared.probe_interval);
    let mut since_scan = Duration::ZERO;
    while !shared.stop.load(Ordering::Acquire) {
        thread::sleep(tick);
        since_scan += tick;
        if since_scan < shared.probe_interval {
            continue;
        }
        since_scan = Duration::ZERO;
        let map = shared.map.load();
        let now = map.now_micros();
        for range in map.ranges() {
            for rep in range.replicas() {
                if rep.is_live() || !rep.probe_due(now) {
                    continue;
                }
                match probe_replica(rep) {
                    Ok(conn) => {
                        rep.pool().checkin(conn);
                        if rep.mark_live() {
                            if let Some(o) = shared.obs.get() {
                                o.note_probe_recovery();
                                o.set_replicas_live(map.live_replicas());
                            }
                        }
                    }
                    Err(_) => rep.probe_failed(
                        map.now_micros(),
                        shared.probe_interval,
                        shared.probe_backoff_cap,
                    ),
                }
            }
        }
        // Version-refresh piggyback: re-probe recently used ranges whose
        // cached version vector is aging toward the staleness bound, so
        // warm cache traffic rarely pays an on-demand `INFO` round-trip.
        // Best-effort — a failed refresh just leaves the vector to expire.
        if shared.cache.enabled() {
            let generation = map.generation();
            let n = map.range_count();
            for ri in shared.cache.refresh_due(generation, n) {
                if let Some(vs) = probe_versions_fresh(map, ri) {
                    shared.cache.record_versions(generation, n, ri, vs);
                }
            }
        }
    }
}

/// One background version probe: a fresh dial + `INFO` on the range's
/// preferred replica. Fresh connections only — the prober must not
/// compete with request traffic for pooled conns or convict replicas.
fn probe_versions_fresh(map: &ShardMap, ri: usize) -> Option<Vec<u64>> {
    let range = map.range(ri);
    let rep = range.replica(range.preferred());
    let mut c = rep.pool().dial().ok()?;
    c.send_line("INFO").ok()?;
    let status = c.read_status().ok()?;
    rep.pool().checkin(c);
    parse_versions_field(&status)
}

/// One health probe: fresh dial + `PING` + status. Returns the connection
/// (synchronized — `PING` has a one-line response) for check-in.
fn probe_replica(rep: &Replica) -> Result<ShardConn, String> {
    let mut c = rep.pool().dial().map_err(|e| e.to_string())?;
    c.send_line("PING").map_err(|e| e.to_string())?;
    c.read_status().map_err(|e| e.to_string())?;
    Ok(c)
}

/// Process-wide source of router-picked trace ids (`trace=on` from a
/// client). Monotonic, never reused within a process.
static TRACE_SEQ: AtomicU64 = AtomicU64::new(1);

/// Process-wide source of failover-backoff jitter seeds — each request's
/// schedule draws distinct jitter without consulting the wall clock.
static BACKOFF_SEED: AtomicU64 = AtomicU64::new(0x9e3779b97f4a7c15);

fn next_backoff_seed() -> u64 {
    BACKOFF_SEED.fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed)
}

/// Creates the request [`Trace`] demanded by the client's `trace=` option
/// (a client-pinned numeric id is honored verbatim, `on` draws a fresh
/// router-unique id). Independent of `--no-obs` — tracing is
/// request-scoped state, not registry state.
fn make_trace(mode: TraceMode) -> Option<Trace> {
    match mode {
        TraceMode::Off => None,
        TraceMode::On => Some(Trace::new(TRACE_SEQ.fetch_add(1, Ordering::Relaxed))),
        TraceMode::Id(id) => Some(Trace::new(id)),
    }
}

/// Closes out a request trace into its wire-ordered span list (empty when
/// untraced).
fn finish_trace(trace: Option<Trace>, total_micros: u128) -> Vec<SpanRec> {
    match trace {
        None => Vec::new(),
        Some(t) => t.finish(u64::try_from(total_micros).unwrap_or(u64::MAX)),
    }
}

/// Saturating `u64` micros since `started`.
fn elapsed_micros(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The metrics label for a parsed request.
fn verb_of(req: &Request) -> &'static str {
    match req {
        Request::Ping => "PING",
        Request::Quit => "QUIT",
        Request::Shutdown => "SHUTDOWN",
        Request::Info => "INFO",
        Request::Cache(_) => "CACHE",
        Request::List => "LIST",
        Request::Explain { .. } | Request::ExplainSpec { .. } => "EXPLAIN",
        Request::Run { .. } => "RUN",
        Request::Query { .. } => "QUERY",
        Request::Metrics | Request::MetricsSlow => "METRICS",
    }
}

impl LineService for Router {
    fn handle(&self, line: &str, w: &mut dyn Write) -> io::Result<Reply> {
        let started = Instant::now();
        let parsed = parse_request(line);
        let verb = parsed.as_ref().ok().map(verb_of);
        let reply = self.dispatch(parsed, line, w)?;
        if let (Some(obs), Some(verb)) = (&self.obs, verb) {
            obs.record_request(verb, elapsed_micros(started));
        }
        Ok(reply)
    }
}

impl Router {
    fn dispatch(
        &self,
        parsed: Result<Request, String>,
        line: &str,
        mut w: &mut dyn Write,
    ) -> io::Result<Reply> {
        match parsed {
            Err(msg) => writeln!(w, "ERR {msg}")?,
            Ok(Request::Ping) => writeln!(w, "OK pong")?,
            Ok(Request::Quit) => {
                writeln!(w, "OK bye")?;
                return Ok(Reply::Close);
            }
            Ok(Request::Shutdown) => {
                // Stops the router only; shards are long-lived and keep
                // serving (their own clients, or a restarted router).
                writeln!(w, "OK shutting down")?;
                return Ok(Reply::Shutdown);
            }
            Ok(Request::Info) => self.handle_info(&mut w)?,
            Ok(Request::Metrics) => self.handle_metrics(&mut w)?,
            Ok(Request::MetricsSlow) => match &self.obs {
                None => writeln!(w, "ERR metrics disabled (--no-obs)")?,
                Some(obs) => write_slow_response(&mut w, &obs.slow_ring().snapshot())?,
            },
            Ok(Request::Cache(cmd)) => self.handle_cache(cmd, &mut w)?,
            Ok(Request::List) | Ok(Request::Explain { .. }) | Ok(Request::ExplainSpec { .. }) => {
                self.relay_text(line, &mut w)?
            }
            Ok(Request::Run { query, options }) => match self.check_options(&options) {
                Err(msg) => writeln!(w, "ERR {msg}")?,
                Ok((opts, controls)) => {
                    match self.queries.get(&query) {
                        // Mirrors the shard-side unknown-name error so
                        // clients see one message either way.
                        None => writeln!(
                            w,
                            "ERR unknown query {query} (LIST shows the registered names)"
                        )?,
                        Some(spec) => {
                            self.scatter_and_respond("RUN", line, spec, &opts, &controls, &mut w)?;
                        }
                    }
                }
            },
            Ok(Request::Query { spec, options }) => match self.check_options(&options) {
                Err(msg) => writeln!(w, "ERR {msg}")?,
                Ok((opts, controls)) => {
                    self.scatter_and_respond("QUERY", line, &spec, &opts, &controls, &mut w)?;
                }
            },
        }
        Ok(Reply::Continue)
    }
}

/// Serves `router` on `addr` under the default frontend tunables.
pub fn serve_router(router: Arc<Router>, addr: &str) -> io::Result<ServerHandle> {
    serve_router_with(router, addr, ServerConfig::default())
}

/// [`serve_router`] with explicit frontend tunables — the same
/// [`ServerConfig`] (poll tick, request-line cap) as qppt-server, because
/// it is literally the same frontend.
pub fn serve_router_with(
    router: Arc<Router>,
    addr: &str,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    serve_lines(router, addr, config)
}

/// Reads one complete `PARTIAL` response off a shard connection.
fn read_partial_response(conn: &mut ShardConn) -> Result<Gathered, ClientError> {
    let status = conn.read_status()?;
    let rows = parse_partial_status(&status).ok_or_else(|| {
        ClientError::Protocol(format!("expected a partial status, got: {status}"))
    })?;
    let (partial, stats) = read_partial_body(conn.reader(), rows)?;
    Ok(Gathered { partial, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_stride_maps_rates_to_deterministic_strides() {
        assert_eq!(sample_stride(0.0), None);
        assert_eq!(sample_stride(-0.5), None);
        assert_eq!(sample_stride(f64::NAN), None);
        assert_eq!(sample_stride(f64::INFINITY), None); // garbage disables
        assert_eq!(sample_stride(1.0), Some(1));
        assert_eq!(sample_stride(2.0), Some(1)); // clamps to every request
        assert_eq!(sample_stride(0.5), Some(2));
        assert_eq!(sample_stride(0.25), Some(4));
        assert_eq!(sample_stride(0.1), Some(10));
    }

    #[test]
    fn sample_trace_promotes_every_nth_untraced_request() {
        // The fleet is never dialed here — sampling is pure router state.
        let mut config = RouterConfig::new(vec!["127.0.0.1:1".to_string()]);
        config.trace_sample_rate = 0.5;
        let router = Router::new(config);
        // First untraced request is always sampled, then every 2nd.
        let picks: Vec<bool> = (0..6)
            .map(|_| matches!(router.sample_trace(TraceMode::Off), TraceMode::On))
            .collect();
        assert_eq!(picks, [true, false, true, false, true, false]);
        // Client-pinned modes pass through and do not tick the counter:
        // the next untraced request lands on tick 6 and is sampled, as if
        // the pinned requests never happened.
        assert!(matches!(
            router.sample_trace(TraceMode::Id(7)),
            TraceMode::Id(7)
        ));
        assert!(matches!(router.sample_trace(TraceMode::On), TraceMode::On));
        assert!(matches!(router.sample_trace(TraceMode::Off), TraceMode::On));
    }

    #[test]
    fn sampling_disabled_leaves_organic_traffic_untraced() {
        let router = Router::new(RouterConfig::new(vec!["127.0.0.1:1".to_string()]));
        for _ in 0..4 {
            assert!(matches!(
                router.sample_trace(TraceMode::Off),
                TraceMode::Off
            ));
        }
    }
}
