//! The router-side result cache: two fleet-keyed tiers over the same
//! byte-budgeted [`ShardedLru`] machinery the shards use, plus the
//! version-probe state that keeps them coherent without a database.
//!
//! * **Merged-result tier** — the fully merged, ordered [`QueryResult`] of
//!   one routed `RUN`/`QUERY`, keyed on the query/options fingerprint and
//!   valid only at one `(topology generation, per-shard table-version
//!   vector)` snapshot. A hit answers a repeated fleet-wide query without
//!   touching any shard.
//! * **Partial-aggregate tier** — each shard's raw `mode=partial` payload,
//!   keyed per `(query, range, range count)` and versioned by **that
//!   shard's table versions only**. When a topology swap or a single-shard
//!   write invalidates the merged entry, the router re-fetches only the
//!   affected ranges and re-merges locally — the surviving ranges' partials
//!   keep hitting.
//!
//! ## Coherence without a database
//!
//! The router cannot compute [`QueryFingerprint`](qppt_cache::QueryFingerprint)s
//! — it has no catalog. Instead every shard surfaces its table-version
//! vector as the `versions=` field of `INFO` (catalog order, deterministic
//! across identically built replicas), and the router tracks one probed
//! vector per range. A probed vector older than the staleness bound
//! (`--cache-probe-interval-ms`) is re-probed before any cached entry is
//! served, so a cached answer can never be staler than that bound; the
//! background prober refreshes recently used vectors proactively so warm
//! traffic rarely pays an on-demand probe. A version mismatch at lookup
//! time invalidates exactly the affected shard's partials and every merged
//! result composed from them — the same key-level MVCC check the shard
//! tiers run, lifted to fleet scope.
//!
//! Correctness rests on the invariants the router already relies on:
//! results are byte-identical across parallelism and batch mode (so a
//! router-side options fingerprint over the *normalized* client options is
//! sound even when shard defaults differ), and any server addressed as
//! range `i` of `n` serves the canonical shard `i/n` of the same dataset.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qppt_cache::{CacheKey, HeapSize, ShardedLru, TierSnapshot};
use qppt_core::{Fnv64, PartialAggregate};
use qppt_storage::QueryResult;

/// Domain-separation tags folded into the two tiers' bucket keys so a
/// merged entry and a partial entry of the same query can never collide.
const MERGED_TAG: u64 = 0x6d65_7267_6564_2121; // "merged!!"
const PARTIAL_TAG: u64 = 0x7061_7274_6961_6c21; // "partial!"

/// The fleet-scoped [`CacheKey`]: a 64-bit bucket key plus the version
/// vector a valid entry must match. Built by [`FleetKey::merged`] /
/// [`FleetKey::partial`]; `qppt-cache` stays shard-agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetKey {
    key: u64,
    versions: Vec<u64>,
}

impl CacheKey for FleetKey {
    fn key(&self) -> u64 {
        self.key
    }

    fn versions(&self) -> &[u64] {
        &self.versions
    }
}

impl FleetKey {
    /// The merged-result tier key of one routed query. The bucket key
    /// covers only the query/options fingerprint — stable across topology
    /// swaps — while the version vector snapshots the topology generation
    /// plus every range's table versions (length-prefixed, so vectors of
    /// different shapes can never alias). A swap or any shard write thus
    /// registers as an **invalidation** at the next lookup, not a miss.
    pub fn merged(qfp: u64, generation: u64, range_versions: &[Vec<u64>]) -> Self {
        let mut key = Fnv64::new();
        key.write_u64(MERGED_TAG).write_u64(qfp);
        let mut versions = Vec::with_capacity(
            2 + range_versions.len() + range_versions.iter().map(Vec::len).sum::<usize>(),
        );
        versions.push(generation);
        versions.push(range_versions.len() as u64);
        for vs in range_versions {
            versions.push(vs.len() as u64);
            versions.extend_from_slice(vs);
        }
        Self {
            key: key.finish(),
            versions,
        }
    }

    /// The partial-aggregate tier key of one range's payload. The bucket
    /// key covers the query fingerprint and the range's place in the
    /// sharding (`range` of `range_count` — a re-shard changes the key,
    /// a plain replica failover does not); the version vector is **that
    /// shard's table versions only**, so a topology swap that keeps the
    /// range intact leaves the entry hitting and a write to one shard
    /// invalidates exactly that shard's partials.
    pub fn partial(qfp: u64, range: usize, range_count: usize, versions: &[u64]) -> Self {
        let mut key = Fnv64::new();
        key.write_u64(PARTIAL_TAG)
            .write_u64(qfp)
            .write_u64(range as u64)
            .write_u64(range_count as u64);
        Self {
            key: key.finish(),
            versions: versions.to_vec(),
        }
    }
}

/// A merged-result tier entry: the ordered, decoded fleet-wide result plus
/// the worker count reported when it was first assembled (re-served on
/// hits so the response header keeps its shape).
#[derive(Debug, Clone)]
pub struct CachedMerged {
    pub result: QueryResult,
    pub workers: usize,
}

impl HeapSize for CachedMerged {
    fn heap_bytes(&self) -> usize {
        self.result.memory_bytes()
    }
}

/// A partial-aggregate tier entry: one range's raw payload plus the worker
/// count its shard reported (folded into the merged response's maximum).
#[derive(Debug, Clone)]
pub struct CachedPartial {
    pub partial: PartialAggregate,
    pub workers: usize,
}

impl HeapSize for CachedPartial {
    fn heap_bytes(&self) -> usize {
        self.partial.memory_bytes()
    }
}

/// One range's probed table-version vector and when it was learned.
#[derive(Debug, Clone)]
struct ProbedVersions {
    versions: Vec<u64>,
    learned: Instant,
}

/// The per-range version-probe state, valid for exactly one topology
/// generation — a fleet swap resets it wholesale (new ranges may be
/// entirely different servers).
#[derive(Debug)]
struct VersionState {
    generation: u64,
    ranges: Vec<Option<ProbedVersions>>,
}

/// Budgets and probe tunables of the [`RouterCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterCacheConfig {
    /// Byte budget of the merged-result tier.
    pub result_budget: usize,
    /// Byte budget of the partial-aggregate tier (one entry per range per
    /// query — keep it larger than the result tier).
    pub partial_budget: usize,
    /// Shard count per tier (rounded up to a power of two).
    pub shards: usize,
    /// Idle TTL of both tiers (`None` = no age limit).
    pub ttl: Option<Duration>,
    /// The staleness bound (`--cache-probe-interval-ms`): a probed
    /// version vector older than this is re-probed before any cached
    /// entry is served on it.
    pub probe_interval: Duration,
    /// `false` turns every lookup into a pass-through miss and every
    /// insert into a no-op (`--no-router-cache`).
    pub enabled: bool,
}

impl Default for RouterCacheConfig {
    fn default() -> Self {
        Self {
            result_budget: 32 << 20,  // 32 MiB
            partial_budget: 64 << 20, // 64 MiB
            shards: 8,
            ttl: None,
            probe_interval: Duration::from_millis(500),
            enabled: true,
        }
    }
}

impl RouterCacheConfig {
    /// A configuration with router-side caching switched off entirely.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Point-in-time statistics of both router tiers plus the version-probe
/// count — what `CACHE STATS` appends as `router_*` fields and `METRICS`
/// renders as `qppt_router_cache_*` families (both from this snapshot, so
/// the two surfaces agree by definition).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterCacheStats {
    pub results: TierSnapshot,
    pub partials: TierSnapshot,
    /// `INFO` version probes issued (on-demand + background refresh).
    pub probes: u64,
}

/// The two-tier router-side result cache (see module docs). Internally
/// synchronized — shared behind an `Arc` by the dispatcher and the
/// background prober.
#[derive(Debug)]
pub struct RouterCache {
    results: ShardedLru<Arc<CachedMerged>>,
    partials: ShardedLru<Arc<CachedPartial>>,
    state: Mutex<VersionState>,
    probes: AtomicU64,
    probe_interval: Duration,
    enabled: bool,
}

impl Default for RouterCache {
    fn default() -> Self {
        Self::new(RouterCacheConfig::default())
    }
}

impl RouterCache {
    /// Creates the cache with the given budgets and probe tunables.
    pub fn new(config: RouterCacheConfig) -> Self {
        Self {
            results: ShardedLru::new(config.result_budget, config.shards, config.ttl),
            partials: ShardedLru::new(config.partial_budget, config.shards, config.ttl),
            state: Mutex::new(VersionState {
                generation: 0,
                ranges: Vec::new(),
            }),
            probes: AtomicU64::new(0),
            probe_interval: config.probe_interval,
            enabled: config.enabled,
        }
    }

    /// `false` when the cache was built disabled (`--no-router-cache`).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The staleness bound probed vectors are held to.
    pub fn probe_interval(&self) -> Duration {
        self.probe_interval
    }

    /// Locks the state for `generation`/`range_count`, resetting it when
    /// the topology moved (a swapped fleet's ranges may be different
    /// servers — old vectors say nothing about them).
    fn state_for(
        &self,
        generation: u64,
        range_count: usize,
    ) -> std::sync::MutexGuard<'_, VersionState> {
        let mut s = self.state.lock().expect("router cache state lock");
        if s.generation != generation || s.ranges.len() != range_count {
            s.generation = generation;
            s.ranges = vec![None; range_count];
        }
        s
    }

    /// The probed version vectors still inside the staleness bound, per
    /// range (`None` = never probed at this generation, or too old —
    /// probe before serving cache entries on it).
    pub fn cached_versions(&self, generation: u64, range_count: usize) -> Vec<Option<Vec<u64>>> {
        let s = self.state_for(generation, range_count);
        let now = Instant::now();
        s.ranges
            .iter()
            .map(|r| {
                r.as_ref()
                    .filter(|p| now.saturating_duration_since(p.learned) <= self.probe_interval)
                    .map(|p| p.versions.clone())
            })
            .collect()
    }

    /// Records a freshly probed version vector for `range` (and counts the
    /// probe).
    pub fn record_versions(&self, generation: u64, range_count: usize, range: usize, vs: Vec<u64>) {
        let mut s = self.state_for(generation, range_count);
        s.ranges[range] = Some(ProbedVersions {
            versions: vs,
            learned: Instant::now(),
        });
        self.probes.fetch_add(1, Ordering::Relaxed);
    }

    /// Ranges whose probed vector is past half the staleness bound but not
    /// long-idle — what the background prober refreshes so organic warm
    /// hits rarely pay an on-demand probe. Vectors idle past 10× the bound
    /// are left to expire (no traffic is consulting them); a range never
    /// probed is not listed (the first request probes it on demand).
    pub fn refresh_due(&self, generation: u64, range_count: usize) -> Vec<usize> {
        let s = self.state_for(generation, range_count);
        let now = Instant::now();
        s.ranges
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                let age = now.saturating_duration_since(r.as_ref()?.learned);
                (age > self.probe_interval / 2 && age <= self.probe_interval * 10).then_some(i)
            })
            .collect()
    }

    /// Merged-result tier lookup.
    pub fn get_merged(&self, key: &FleetKey) -> Option<Arc<CachedMerged>> {
        if !self.enabled {
            return None;
        }
        self.results.get(key)
    }

    /// Merged-result tier insert.
    pub fn put_merged(&self, key: &FleetKey, value: Arc<CachedMerged>) {
        if self.enabled {
            self.results.put(key, value);
        }
    }

    /// Partial-aggregate tier lookup.
    pub fn get_partial(&self, key: &FleetKey) -> Option<Arc<CachedPartial>> {
        if !self.enabled {
            return None;
        }
        self.partials.get(key)
    }

    /// Partial-aggregate tier insert.
    pub fn put_partial(&self, key: &FleetKey, value: Arc<CachedPartial>) {
        if self.enabled {
            self.partials.put(key, value);
        }
    }

    /// Drops every entry in both tiers (lifetime counters survive). The
    /// probed version vectors are kept — they describe the shards, not the
    /// dropped entries.
    pub fn clear(&self) {
        self.results.clear();
        self.partials.clear();
    }

    /// Counters, entry counts, and resident bytes of both tiers.
    pub fn stats(&self) -> RouterCacheStats {
        RouterCacheStats {
            results: self.results.snapshot(),
            partials: self.partials.snapshot(),
            probes: self.probes.load(Ordering::Relaxed),
        }
    }
}

/// Renders [`RouterCacheStats`] as the `router_*` fields the routed
/// `CACHE STATS` line appends after the summed shard counters — same
/// field set as a shard tier, distinct names, never summed into them.
pub fn render_router_cache_stats(s: &RouterCacheStats) -> String {
    let tier = |name: &str, t: &TierSnapshot| {
        format!(
            "{name}_hits={} {name}_misses={} {name}_invalidations={} \
             {name}_evictions={} {name}_expirations={} {name}_entries={} {name}_bytes={}",
            t.hits, t.misses, t.invalidations, t.evictions, t.expirations, t.entries, t.bytes
        )
    };
    format!(
        "{} {} router_probes={}",
        tier("router_result", &s.results),
        tier("router_partial", &s.partials),
        s.probes
    )
}

/// Renders the router tiers as Prometheus `qppt_router_cache_*` families
/// with a `tier` label, mirroring [`render_router_cache_stats`] field for
/// field — appended to the routed `METRICS` exposition from the same
/// snapshot `CACHE STATS` reads.
pub fn render_router_cache_metrics(s: &RouterCacheStats) -> String {
    let tiers: [(&str, &TierSnapshot); 2] = [("result", &s.results), ("partial", &s.partials)];
    let mut out = String::new();
    let mut family = |name: &str, help: &str, kind: &str, get: &dyn Fn(&TierSnapshot) -> i64| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        for (tier, t) in &tiers {
            out.push_str(&format!("{name}{{tier=\"{tier}\"}} {}\n", get(t)));
        }
    };
    family(
        "qppt_router_cache_hits_total",
        "Router-cache lookups answered from the tier.",
        "counter",
        &|t| t.hits as i64,
    );
    family(
        "qppt_router_cache_misses_total",
        "Router-cache lookups the tier could not answer.",
        "counter",
        &|t| t.misses as i64,
    );
    family(
        "qppt_router_cache_invalidations_total",
        "Entries dropped because a shard version vector or the topology moved.",
        "counter",
        &|t| t.invalidations as i64,
    );
    family(
        "qppt_router_cache_evictions_total",
        "Entries removed under byte pressure.",
        "counter",
        &|t| t.evictions as i64,
    );
    family(
        "qppt_router_cache_expirations_total",
        "Entries removed after sitting idle past the TTL.",
        "counter",
        &|t| t.expirations as i64,
    );
    family(
        "qppt_router_cache_entries",
        "Live entries resident in the tier.",
        "gauge",
        &|t| t.entries as i64,
    );
    family(
        "qppt_router_cache_bytes",
        "Heap bytes resident in the tier.",
        "gauge",
        &|t| t.bytes as i64,
    );
    out.push_str(&format!(
        "# HELP qppt_router_cache_probes_total INFO version probes issued \
         (on-demand + background refresh).\n\
         # TYPE qppt_router_cache_probes_total counter\n\
         qppt_router_cache_probes_total {}\n",
        s.probes
    ));
    out
}

/// Extracts the table-version vector from a server's `INFO` status line
/// (the `versions=` field: comma-separated per-table versions in catalog
/// order). `None` when the field is missing or malformed — the caller
/// falls back to an uncached scatter.
pub fn parse_versions_field(status: &str) -> Option<Vec<u64>> {
    let raw = status
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("versions="))?;
    raw.split(',').map(|v| v.parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_core::PartialRow;

    fn partial(rows: usize) -> CachedPartial {
        CachedPartial {
            partial: PartialAggregate {
                group_cols: vec!["g".to_string()],
                agg_cols: vec!["a".to_string()],
                rows: (0..rows as u64)
                    .map(|k| PartialRow {
                        key: k,
                        group_values: vec![qppt_storage::Value::Int(k as i64)],
                        accs: vec![1],
                    })
                    .collect(),
            },
            workers: 2,
        }
    }

    fn merged(rows: usize) -> CachedMerged {
        CachedMerged {
            result: QueryResult {
                group_cols: vec!["g".to_string()],
                agg_cols: vec!["a".to_string()],
                rows: (0..rows as i64)
                    .map(|k| qppt_storage::ResultRow {
                        key_values: vec![qppt_storage::Value::Int(k)],
                        agg_values: vec![1],
                    })
                    .collect(),
            },
            workers: 2,
        }
    }

    #[test]
    fn merged_key_invalidates_on_any_shard_version_or_generation_move() {
        let cache = RouterCache::default();
        let vs = vec![vec![1, 1], vec![1, 1]];
        let key = FleetKey::merged(7, 0, &vs);
        cache.put_merged(&key, Arc::new(merged(3)));
        assert!(cache.get_merged(&key).is_some());

        // One shard's one table moves: same bucket key, stale versions.
        let moved = vec![vec![2, 1], vec![1, 1]];
        assert!(cache.get_merged(&FleetKey::merged(7, 0, &moved)).is_none());
        assert_eq!(cache.stats().results.invalidations, 1);

        // A topology swap (new generation) also invalidates, not misses.
        cache.put_merged(&FleetKey::merged(7, 0, &vs), Arc::new(merged(3)));
        assert!(cache.get_merged(&FleetKey::merged(7, 1, &vs)).is_none());
        assert_eq!(cache.stats().results.invalidations, 2);
    }

    #[test]
    fn partial_keys_isolate_ranges_and_survive_generation_moves() {
        let cache = RouterCache::default();
        let k0 = FleetKey::partial(7, 0, 2, &[1, 1]);
        let k1 = FleetKey::partial(7, 1, 2, &[1, 1]);
        assert_ne!(k0.key(), k1.key(), "ranges must not alias");
        cache.put_partial(&k0, Arc::new(partial(2)));
        cache.put_partial(&k1, Arc::new(partial(3)));

        // A write on shard 0 invalidates exactly range 0's entry.
        assert!(cache
            .get_partial(&FleetKey::partial(7, 0, 2, &[2, 1]))
            .is_none());
        assert!(cache.get_partial(&k1).is_some());
        let s = cache.stats();
        assert_eq!((s.partials.invalidations, s.partials.hits), (1, 1));

        // Partial keys carry no generation — the same range/versions hit
        // after a swap; a *re-shard* (different range count) is a miss.
        assert!(cache.get_partial(&k1).is_some());
        assert!(cache
            .get_partial(&FleetKey::partial(7, 1, 4, &[1, 1]))
            .is_none());
    }

    #[test]
    fn version_state_is_generation_scoped_and_staleness_bounded() {
        let cache = RouterCache::new(RouterCacheConfig {
            probe_interval: Duration::from_millis(40),
            ..RouterCacheConfig::default()
        });
        assert_eq!(cache.cached_versions(0, 2), vec![None, None]);
        cache.record_versions(0, 2, 0, vec![1, 1]);
        cache.record_versions(0, 2, 1, vec![1, 1]);
        assert_eq!(
            cache.cached_versions(0, 2),
            vec![Some(vec![1, 1]), Some(vec![1, 1])]
        );
        assert_eq!(cache.stats().probes, 2);

        // A generation move resets the state wholesale.
        assert_eq!(cache.cached_versions(1, 2), vec![None, None]);
        cache.record_versions(1, 2, 0, vec![3, 1]);
        assert_eq!(cache.cached_versions(1, 2)[0], Some(vec![3, 1]));

        // Past the staleness bound the vector is no longer served…
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(cache.cached_versions(1, 2), vec![None, None]);
        // …and the background refresh list skips long-idle entries too
        // (age is past 10× the 40 ms bound only much later; here it is
        // due).
        assert_eq!(cache.refresh_due(1, 2), vec![0]);
    }

    #[test]
    fn clear_drops_entries_keeps_counters_and_versions() {
        let cache = RouterCache::default();
        cache.record_versions(0, 1, 0, vec![1]);
        let key = FleetKey::merged(9, 0, &[vec![1]]);
        cache.put_merged(&key, Arc::new(merged(1)));
        cache.put_partial(&FleetKey::partial(9, 0, 1, &[1]), Arc::new(partial(1)));
        assert!(cache.get_merged(&key).is_some());
        cache.clear();
        assert!(cache.get_merged(&key).is_none());
        let s = cache.stats();
        assert_eq!((s.results.entries, s.partials.entries), (0, 0));
        assert_eq!((s.results.hits, s.results.insertions), (1, 1));
        assert_eq!(cache.cached_versions(0, 1), vec![Some(vec![1])]);
    }

    #[test]
    fn disabled_cache_is_a_pass_through() {
        let cache = RouterCache::new(RouterCacheConfig::disabled());
        assert!(!cache.enabled());
        let key = FleetKey::merged(9, 0, &[vec![1]]);
        cache.put_merged(&key, Arc::new(merged(1)));
        assert!(cache.get_merged(&key).is_none());
        assert_eq!(cache.stats().results.insertions, 0);
    }

    #[test]
    fn stats_renderings_agree_field_for_field() {
        let cache = RouterCache::default();
        let key = FleetKey::merged(3, 0, &[vec![1]]);
        cache.put_merged(&key, Arc::new(merged(2)));
        cache.get_merged(&key);
        cache.get_merged(&FleetKey::merged(4, 0, &[vec![1]]));
        cache.record_versions(0, 1, 0, vec![1]);
        let s = cache.stats();
        let line = render_router_cache_stats(&s);
        assert!(line.contains("router_result_hits=1"));
        assert!(line.contains("router_result_misses=1"));
        assert!(line.contains("router_partial_hits=0"));
        assert!(line.contains("router_probes=1"));
        let expo = qppt_obs::parse_exposition(&render_router_cache_metrics(&s))
            .expect("exposition parses");
        assert_eq!(
            expo.value("qppt_router_cache_hits_total", &[("tier", "result")]),
            Some(1)
        );
        assert_eq!(
            expo.value("qppt_router_cache_misses_total", &[("tier", "result")]),
            Some(1)
        );
        assert_eq!(expo.value("qppt_router_cache_probes_total", &[]), Some(1));
        assert_eq!(
            expo.value("qppt_router_cache_bytes", &[("tier", "result")]),
            Some(s.results.bytes as i64)
        );
    }

    #[test]
    fn versions_field_parses_strictly() {
        assert_eq!(
            parse_versions_field("OK sf=0.01 versions=1,2,3 build=x"),
            Some(vec![1, 2, 3])
        );
        assert_eq!(parse_versions_field("OK versions=7"), Some(vec![7]));
        assert_eq!(parse_versions_field("OK sf=0.01 build=x"), None);
        assert_eq!(parse_versions_field("OK versions=1,x,3"), None);
    }
}
