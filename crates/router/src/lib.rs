//! # qppt-router — distributed prefix-sharded serving
//!
//! Scale-out for the qppt-server frontend: N `qppt-server` shards each own
//! a contiguous range of the fact table's canonical partition key
//! (`lo_orderdate`, the stage-1 prefix of every SSB plan's fact tree —
//! [`qppt_ssb::shard_bounds`]), with dimension tables replicated in full.
//! The router speaks the exact same line protocol both ways: clients
//! connect to it as if it were a single server, and it fans each query out
//! to the fleet.
//!
//! ## Scatter / gather / deterministic merge
//!
//! A `RUN`/`QUERY` is forwarded to **every** shard with `mode=partial`
//! appended, over pooled persistent connections — all shards execute
//! concurrently. Each answers a `PARTIAL` response: its aggregation index
//! serialized as (packed group key, decoded group values, accumulator
//! sums) in ascending key order, *without* ORDER BY. The router merges
//! the partials by raw key in the same deterministic order
//! [`AggTable::merge_from`](qppt_core::inter::AggTable::merge_from)
//! guarantees for intra-node parallelism (see
//! [`qppt_par::merge_partial_aggregates`]), then applies the query's
//! ORDER BY — producing output **byte-identical** to a single unsharded
//! server, at any shard count and any per-shard parallelism
//! (`router_equivalence` pins this down for all 13 SSB queries × {1, 2,
//! 4} shards).
//!
//! This works because the packed group keys and their decoded values
//! derive only from the *dimension* tables, which every shard replicates
//! bit-identically — the same group packs to the same `u64` everywhere,
//! whatever fact rows a shard holds.
//!
//! ## Robustness
//!
//! Connect and read timeouts bound every shard exchange; an unreachable
//! or mid-stream-dead shard gets exactly one reconnect retry (queries are
//! idempotent reads), then the client receives a structured
//! `ERR shard <i> unavailable (<detail>)` — never a hang, and never a
//! partial gather served as a complete answer. The router process itself
//! stays up throughout, and a restarted shard is picked up transparently
//! by the next request's fresh dial (`router_robustness` exercises all of
//! this).
//!
//! ## Verbs
//!
//! | verb | routing |
//! |---|---|
//! | `RUN` / `QUERY` | scatter `mode=partial`, gather, merge |
//! | `INFO` | fan-out: summed `rows=`, `shards=N`, per-shard map |
//! | `CACHE STATS` | fan-out: counters summed across shards |
//! | `CACHE CLEAR [dims]` | fan-out to every shard |
//! | `LIST` / `EXPLAIN` | relayed to shard 0 (identical on all shards) |
//! | `PING` | answered locally |
//! | `SHUTDOWN` | stops the router only — shards keep serving |
//!
//! The TCP frontend is literally qppt-server's ([`Router`] implements
//! [`qppt_server::LineService`]), so oversized and malformed request
//! lines get the same drain-and-`ERR` treatment as on a shard.

mod pool;
mod router;

pub mod obs;

pub use obs::RouterObs;
pub use router::{serve_router, serve_router_with, Router, RouterConfig, RouterError};
