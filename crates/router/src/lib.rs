//! # qppt-router — distributed prefix-sharded serving
//!
//! Scale-out for the qppt-server frontend: N `qppt-server` shards each own
//! a contiguous range of the fact table's canonical partition key
//! (`lo_orderdate`, the stage-1 prefix of every SSB plan's fact tree —
//! [`qppt_ssb::shard_bounds`]), with dimension tables replicated in full.
//! The router speaks the exact same line protocol both ways: clients
//! connect to it as if it were a single server, and it fans each query out
//! to the fleet.
//!
//! ## Scatter / gather / deterministic merge
//!
//! A `RUN`/`QUERY` is forwarded to **every** shard with `mode=partial`
//! appended, over pooled persistent connections — all shards execute
//! concurrently. Each answers a `PARTIAL` response: its aggregation index
//! serialized as (packed group key, decoded group values, accumulator
//! sums) in ascending key order, *without* ORDER BY. The router merges
//! the partials by raw key in the same deterministic order
//! [`AggTable::merge_from`](qppt_core::inter::AggTable::merge_from)
//! guarantees for intra-node parallelism (see
//! [`qppt_par::merge_partial_aggregates`]), then applies the query's
//! ORDER BY — producing output **byte-identical** to a single unsharded
//! server, at any shard count and any per-shard parallelism
//! (`router_equivalence` pins this down for all 13 SSB queries × {1, 2,
//! 4} shards).
//!
//! This works because the packed group keys and their decoded values
//! derive only from the *dimension* tables, which every shard replicates
//! bit-identically — the same group packs to the same `u64` everywhere,
//! whatever fact rows a shard holds.
//!
//! ## Replication and failover
//!
//! Each `lo_orderdate` range can own an **ordered replica set** (every
//! replica is a `qppt-server` started with the same `--shard i/n`, so
//! replicas serve identical fact partitions). The fleet layout lives in a
//! router-side shard map ([`map`]) read lock-free on the hot path and
//! swappable atomically between requests ([`Router::swap_fleet`]).
//!
//! Connect and read timeouts bound every replica exchange. On a
//! connect/read/protocol failure the router fails over: the next live
//! replica of the range is tried (suspects last), under a per-request
//! retry budget with capped-exponential jittered backoff, and the failed
//! replica is marked **suspect**. A background health prober `PING`s
//! suspects on their own backoff schedule and flips them back live —
//! recovery without waiting for organic traffic. Only when a range has no
//! replica able to answer does the client receive a bounded structured
//! `ERR range <i> unavailable (<detail>)` — never a hang, and never a
//! partial gather served as a complete answer. Because replicas of a
//! range hold identical data, the merged result is byte-identical to the
//! single-node oracle whichever replica answers (`router_failover` pins
//! this across kill/truncate/flap/outage scenarios; `router_robustness`
//! covers restart healing and slow-shard timeouts via the [`chaos`]
//! fault-injection proxy).
//!
//! ## Routed caching
//!
//! The router carries its own two-tier result cache ([`cache`]): merged
//! fleet-wide results keyed on (query fingerprint, topology generation,
//! per-shard table-version vector), and each shard's raw partial payload
//! keyed per range. Shards surface their table versions through `INFO`;
//! the router probes them — on demand when a cached vector is older than
//! the staleness bound (`--cache-probe-interval-ms`), proactively from
//! the background prober — so a write to one shard invalidates exactly
//! that shard's partials plus the merged results composed from them, and
//! a topology swap invalidates merged results while surviving ranges'
//! partials keep hitting. Cached answers stay byte-identical to the
//! uncached scatter and the single-node oracle (`router_equivalence`,
//! `router_failover`).
//!
//! ## Verbs
//!
//! | verb | routing |
//! |---|---|
//! | `RUN` / `QUERY` | router cache lookup, then scatter `mode=partial` to one replica per missing range (failover inside the range), gather, merge |
//! | `INFO` | fan-out: summed `rows=`, `shards=N`, replica counts, per-range map |
//! | `CACHE STATS` | fan-out to one replica per range: counters summed, router tiers appended as `router_*` |
//! | `CACHE CLEAR [dims]` | broadcast to **every replica** of every range, plus the router's own tiers |
//! | `LIST` / `EXPLAIN` | relayed to range 0 (identical on all shards) |
//! | `PING` | answered locally |
//! | `SHUTDOWN` | stops the router only — shards keep serving |
//!
//! The TCP frontend is literally qppt-server's ([`Router`] implements
//! [`qppt_server::LineService`]), so oversized and malformed request
//! lines get the same drain-and-`ERR` treatment as on a shard.

mod pool;
mod router;

pub mod cache;
pub mod chaos;
pub mod map;
pub mod obs;

pub use cache::{RouterCache, RouterCacheConfig, RouterCacheStats};
pub use chaos::{ChaosMode, ChaosProxy};
pub use map::{parse_fleet, Backoff, ShardMap};
pub use obs::RouterObs;
pub use router::{serve_router, serve_router_with, Router, RouterConfig, RouterError};
