//! Fault-injection proxy for the routed fleet: a TCP middlebox between
//! router and shard that misbehaves on command.
//!
//! A [`ChaosProxy`] listens on its own loopback port and forwards the
//! line protocol to one upstream shard. Tests flip its [`ChaosMode`]
//! between requests to inject exactly the fault a scenario needs:
//!
//! | mode | behaviour |
//! |---|---|
//! | [`Pass`](ChaosMode::Pass) | faithful byte relay |
//! | [`Refuse`](ChaosMode::Refuse) | accept, then close immediately (connect-level failure) |
//! | [`Hang`](ChaosMode::Hang) | swallow requests, never respond (read-timeout path) |
//! | [`Truncate`](ChaosMode::Truncate) | relay only the first *n* response lines, then cut the connection (mid-response death, truncated `P` lines) |
//! | [`Delay`](ChaosMode::Delay) | relay after sleeping (slow-shard latency) |
//! | [`Garbage`](ChaosMode::Garbage) | answer every request with canned lines, upstream untouched (protocol desync) |
//!
//! [`kill`](ChaosProxy::kill) stops the listener entirely (connects are
//! refused at the OS level) and [`revive`](ChaosProxy::revive) rebinds the
//! *same* port — `std`'s `TcpListener` sets `SO_REUSEADDR` on Unix, so the
//! rebind is reliable, the same property the shard-restart robustness test
//! relies on. Mode changes apply per request line, so a scenario script is
//! deterministic: set a mode, issue one request, observe.
//!
//! The proxy frames responses the same way the real client helpers do: an
//! `ERR` status is one line; an `OK` status to a body-carrying verb
//! (`RUN`, `QUERY`, `EXPLAIN`, `LIST`, `METRICS`) is read through `END`.
//! It infers the verb from the request line it just relayed, which covers
//! everything the router sends.

use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// How the proxy treats the next request(s). See the module table.
#[derive(Debug, Clone)]
pub enum ChaosMode {
    /// Faithful relay.
    Pass,
    /// Accept the TCP connection, then close it before reading anything.
    Refuse,
    /// Read the request, forward nothing, respond never.
    Hang,
    /// Relay the response but cut the connection after this many lines
    /// (status line included).
    Truncate(usize),
    /// Relay the response after sleeping this long.
    Delay(Duration),
    /// Respond to every request with these lines; the upstream never sees
    /// the request.
    Garbage(Vec<String>),
}

/// Poll tick for stop-responsive blocking reads.
const TICK: Duration = Duration::from_millis(20);

struct Running {
    stop: Arc<AtomicBool>,
    accept: thread::JoinHandle<()>,
}

/// The fault-injection proxy. See the module docs.
pub struct ChaosProxy {
    upstream: String,
    addr: SocketAddr,
    mode: Arc<Mutex<ChaosMode>>,
    running: Mutex<Option<Running>>,
}

impl ChaosProxy {
    /// Binds a fresh loopback port in front of `upstream` and starts
    /// relaying in [`ChaosMode::Pass`].
    pub fn start(upstream: impl Into<String>) -> io::Result<Arc<Self>> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let proxy = Arc::new(Self {
            upstream: upstream.into(),
            addr,
            mode: Arc::new(Mutex::new(ChaosMode::Pass)),
            running: Mutex::new(None),
        });
        proxy.spawn_accept(listener);
        Ok(proxy)
    }

    /// The proxy's own address — what the router's fleet spec points at.
    /// Stable across [`kill`](Self::kill) / [`revive`](Self::revive).
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Sets the mode applied to subsequent request lines (existing
    /// connections included).
    pub fn set_mode(&self, mode: ChaosMode) {
        *self.mode.lock().unwrap_or_else(|e| e.into_inner()) = mode;
    }

    /// Stops the listener and tears down every proxied connection: new
    /// connects are refused by the OS, in-flight exchanges die mid-stream.
    pub fn kill(&self) {
        let running = self
            .running
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(r) = running {
            r.stop.store(true, Ordering::Release);
            let _ = r.accept.join();
        }
    }

    /// Rebinds the same port after [`kill`](Self::kill). No-op while
    /// already running.
    pub fn revive(&self) -> io::Result<()> {
        let running = self.running.lock().unwrap_or_else(|e| e.into_inner());
        if running.is_some() {
            return Ok(());
        }
        let listener = TcpListener::bind(self.addr)?;
        drop(running);
        self.spawn_accept(listener);
        Ok(())
    }

    fn spawn_accept(&self, listener: TcpListener) {
        listener
            .set_nonblocking(true)
            .expect("proxy listener nonblocking");
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            let mode = Arc::clone(&self.mode);
            let upstream = self.upstream.clone();
            thread::spawn(move || accept_loop(listener, upstream, mode, stop))
        };
        *self.running.lock().unwrap_or_else(|e| e.into_inner()) = Some(Running { stop, accept });
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.kill();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: String,
    mode: Arc<Mutex<ChaosMode>>,
    stop: Arc<AtomicBool>,
) {
    let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _)) => {
                if matches!(
                    *mode.lock().unwrap_or_else(|e| e.into_inner()),
                    ChaosMode::Refuse
                ) {
                    drop(client);
                    continue;
                }
                let upstream = upstream.clone();
                let mode = Arc::clone(&mode);
                let stop = Arc::clone(&stop);
                handlers.push(thread::spawn(move || {
                    let _ = handle_conn(client, &upstream, &mode, &stop);
                }));
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(TICK),
            Err(_) => thread::sleep(TICK),
        }
    }
    // Handler threads watch the same stop flag through their read ticks.
    for h in handlers {
        let _ = h.join();
    }
}

/// One proxied client connection: request lines in, framed responses out,
/// mode sampled per request.
fn handle_conn(
    client: TcpStream,
    upstream: &str,
    mode: &Mutex<ChaosMode>,
    stop: &AtomicBool,
) -> io::Result<()> {
    client.set_read_timeout(Some(TICK))?;
    client.set_nodelay(true).ok();
    let mut client_w = client.try_clone()?;
    let mut client_r = BufReader::new(client);
    let mut up: Option<(BufReader<TcpStream>, TcpStream)> = None;
    loop {
        let Some(request) = read_line_tick(&mut client_r, stop)? else {
            return Ok(()); // client EOF or proxy stopping
        };
        let mode = mode.lock().unwrap_or_else(|e| e.into_inner()).clone();
        match mode {
            ChaosMode::Refuse => return Ok(()), // close mid-stream too
            ChaosMode::Hang => {
                // Swallow this and every further request until the proxy
                // stops or the client gives up and closes.
                while read_line_tick(&mut client_r, stop)?.is_some() {}
                return Ok(());
            }
            ChaosMode::Garbage(lines) => {
                for l in &lines {
                    writeln!(client_w, "{l}")?;
                }
                client_w.flush()?;
            }
            ChaosMode::Pass | ChaosMode::Delay(_) | ChaosMode::Truncate(_) => {
                if up.is_none() {
                    let s = TcpStream::connect(upstream)?;
                    s.set_read_timeout(Some(TICK))?;
                    s.set_nodelay(true).ok();
                    up = Some((BufReader::new(s.try_clone()?), s));
                }
                let (up_r, up_w) = up.as_mut().expect("upstream just dialed");
                writeln!(up_w, "{request}")?;
                up_w.flush()?;
                if let ChaosMode::Delay(d) = mode {
                    thread::sleep(d);
                }
                let budget = match mode {
                    ChaosMode::Truncate(n) => Some(n),
                    _ => None,
                };
                if !relay_response(&request, up_r, &mut client_w, budget, stop)? {
                    // Truncation fired: cut both sides mid-response.
                    return Ok(());
                }
            }
        }
    }
}

/// Relays one framed response; returns `Ok(false)` when a truncation
/// budget ran out (the caller drops both connections).
fn relay_response(
    request: &str,
    up_r: &mut BufReader<TcpStream>,
    client_w: &mut TcpStream,
    budget: Option<usize>,
    stop: &AtomicBool,
) -> io::Result<bool> {
    let mut sent = 0usize;
    let Some(status) = read_line_tick(up_r, stop)? else {
        return Err(io::Error::new(
            ErrorKind::UnexpectedEof,
            "upstream closed before status",
        ));
    };
    if !emit(client_w, &status, &mut sent, budget)? {
        return Ok(false);
    }
    if status.starts_with("OK") && has_body(request) {
        loop {
            let Some(line) = read_line_tick(up_r, stop)? else {
                return Err(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "upstream closed mid-body",
                ));
            };
            let end = line == "END";
            if !emit(client_w, &line, &mut sent, budget)? {
                return Ok(false);
            }
            if end {
                break;
            }
        }
    }
    client_w.flush()?;
    Ok(true)
}

fn emit(
    w: &mut TcpStream,
    line: &str,
    sent: &mut usize,
    budget: Option<usize>,
) -> io::Result<bool> {
    if let Some(n) = budget {
        if *sent >= n {
            w.flush()?;
            return Ok(false);
        }
    }
    writeln!(w, "{line}")?;
    *sent += 1;
    Ok(true)
}

/// Whether an `OK` response to this request line carries a multi-line body
/// terminated by `END`.
fn has_body(request: &str) -> bool {
    let verb = request
        .split_whitespace()
        .next()
        .map(|v| v.to_ascii_uppercase())
        .unwrap_or_default();
    matches!(
        verb.as_str(),
        "RUN" | "QUERY" | "EXPLAIN" | "LIST" | "METRICS"
    )
}

/// Reads one `\n`-terminated line, ticking on the socket read timeout so
/// the thread notices `stop`. `None` on clean EOF or stop.
fn read_line_tick(r: &mut BufReader<TcpStream>, stop: &AtomicBool) -> io::Result<Option<String>> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(None);
        }
        let (done, n) = {
            let available = match r.fill_buf() {
                Ok(a) => a,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue;
                }
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                // EOF: a partial line without a newline is dropped — the
                // peer died mid-line, nothing framed to relay.
                return Ok(None);
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    buf.extend_from_slice(&available[..i]);
                    (true, i + 1)
                }
                None => {
                    buf.extend_from_slice(available);
                    (false, available.len())
                }
            }
        };
        r.consume(n);
        if done {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
        }
    }
}
