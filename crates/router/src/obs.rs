//! Router-side observability: the `qppt_router_*` metric families and the
//! router's slow-query log.
//!
//! The router's `METRICS` response is a *merge*: every shard's exposition
//! is fanned in, re-labeled `shard="<i>"`, summed into `shard="fleet"`
//! samples ([`qppt_obs::merge_exposition`]), and the router's own
//! families — all under the `qppt_router_` prefix, so they can never
//! collide with a shard family — are appended from the [`RouterObs`]
//! registry rendered here.

use std::sync::Arc;
use std::time::Instant;

use qppt_obs::{Counter, Gauge, Histogram, Registry, SlowRing};

/// Wire verbs the router instruments with request counters and latency
/// histograms (same set as a shard, minus nothing — the router answers
/// them all).
pub const VERBS: [&str; 8] = [
    "RUN", "QUERY", "EXPLAIN", "LIST", "INFO", "PING", "CACHE", "METRICS",
];

/// Per-verb handles: request count + end-to-end latency.
struct VerbMetrics {
    requests: Arc<Counter>,
    micros: Arc<Histogram>,
}

/// Process-wide router observability state (see module docs).
pub struct RouterObs {
    registry: Registry,
    started: Instant,
    uptime: Arc<Gauge>,
    slow_threshold: Option<u64>,
    slow_queries: Arc<Counter>,
    slow_ring: SlowRing,
    verbs: Vec<(&'static str, VerbMetrics)>,
    retries: Arc<Counter>,
    reconnects: Arc<Counter>,
    failovers: Arc<Counter>,
    replicas_live: Arc<Gauge>,
    probe_recoveries: Arc<Counter>,
    merge_micros: Arc<Histogram>,
    shard_rtt: Vec<Arc<Histogram>>,
}

impl std::fmt::Debug for RouterObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterObs")
            .field("shards", &self.shard_rtt.len())
            .field("slow_threshold", &self.slow_threshold)
            .finish()
    }
}

impl RouterObs {
    /// Creates the router observability state over `shards` shards.
    /// `slow_threshold` is the `--slow-query-micros` value: routed
    /// queries at or above it are recorded in the slow-query ring served
    /// by `METRICS SLOW` (`None` disables).
    pub fn new(shards: usize, slow_threshold: Option<u64>) -> Arc<Self> {
        let registry = Registry::new();
        let uptime = registry.gauge(
            "qppt_router_uptime_seconds",
            "Seconds since this router started serving.",
        );
        let slow_queries = registry.counter(
            "qppt_router_slow_queries_total",
            "Routed queries that exceeded the --slow-query-micros threshold.",
        );
        let verbs = VERBS
            .iter()
            .map(|&verb| {
                (
                    verb,
                    VerbMetrics {
                        requests: registry.counter_with(
                            "qppt_router_requests_total",
                            "Client requests served by the router, by wire verb.",
                            vec![("verb", verb.to_string())],
                        ),
                        micros: registry.histogram_with(
                            "qppt_router_request_micros",
                            "End-to-end client request latency at the router in \
                             microseconds, by wire verb.",
                            vec![("verb", verb.to_string())],
                        ),
                    },
                )
            })
            .collect();
        let retries = registry.counter(
            "qppt_router_retries_total",
            "Shard exchanges that spent their one bounded retry.",
        );
        let reconnects = registry.counter(
            "qppt_router_reconnects_total",
            "Fresh shard dials that succeeded on the retry path.",
        );
        let failovers = registry.counter(
            "qppt_router_failovers_total",
            "Range exchanges that succeeded on a different replica than \
             the one first attempted.",
        );
        let replicas_live = registry.gauge(
            "qppt_router_replicas_live",
            "Replicas currently marked live in the shard map.",
        );
        let probe_recoveries = registry.counter(
            "qppt_router_probe_recoveries_total",
            "Suspect replicas flipped back to live by the health prober.",
        );
        let merge_micros = registry.histogram(
            "qppt_router_merge_micros",
            "Wall microseconds spent merging gathered partials and applying ORDER BY.",
        );
        let shard_rtt = (0..shards)
            .map(|i| {
                registry.histogram_with(
                    "qppt_router_shard_rtt_micros",
                    "Wall microseconds from scatter start until the shard's response \
                     was fully read (gather runs in shard order, so later shards \
                     include wait time on earlier ones).",
                    vec![("shard", i.to_string())],
                )
            })
            .collect();
        Arc::new(Self {
            registry,
            started: Instant::now(),
            uptime,
            slow_threshold,
            slow_queries,
            slow_ring: SlowRing::default(),
            verbs,
            retries,
            reconnects,
            failovers,
            replicas_live,
            probe_recoveries,
            merge_micros,
            shard_rtt,
        })
    }

    /// Records one served client request of `verb` taking `micros`.
    pub fn record_request(&self, verb: &str, micros: u64) {
        if let Some((_, m)) = self.verbs.iter().find(|(v, _)| *v == verb) {
            m.requests.inc();
            m.micros.record(micros);
        }
    }

    /// Records the gather round-trip of `shard` (see the family help for
    /// what the measurement includes).
    pub fn record_rtt(&self, shard: usize, micros: u64) {
        if let Some(h) = self.shard_rtt.get(shard) {
            h.record(micros);
        }
    }

    /// Counts one retry attempt on a shard exchange.
    pub fn note_retry(&self) {
        self.retries.inc();
    }

    /// Counts one successful fresh dial on the retry path.
    pub fn note_reconnect(&self) {
        self.reconnects.inc();
    }

    /// Counts one request that succeeded on a sibling replica after the
    /// preferred replica failed mid-request.
    pub fn note_failover(&self) {
        self.failovers.inc();
    }

    /// Counts one range exchange answered by `replica` of `shard` — the
    /// per-replica spread of the round-robin read load-balancer. Series
    /// are registered get-or-create on first sight, so the family only
    /// carries replicas that actually answered.
    pub fn note_replica_request(&self, shard: usize, replica: usize) {
        self.registry
            .counter_with(
                "qppt_router_replica_requests_total",
                "Range exchanges answered, by shard and replica ordinal \
                 (the read load-balancer's spread).",
                vec![
                    ("shard", shard.to_string()),
                    ("replica", replica.to_string()),
                ],
            )
            .inc();
    }

    /// Publishes the current fleet-wide live-replica count (the
    /// `qppt_router_replicas_live` gauge).
    pub fn set_replicas_live(&self, live: usize) {
        self.replicas_live
            .set(i64::try_from(live).unwrap_or(i64::MAX));
    }

    /// Counts one suspect replica the health prober flipped back to live.
    pub fn note_probe_recovery(&self) {
        self.probe_recoveries.inc();
    }

    /// Records one partial-merge duration.
    pub fn record_merge(&self, micros: u64) {
        self.merge_micros.record(micros);
    }

    /// The slow-query threshold (µs), if the log is enabled.
    pub fn slow_threshold(&self) -> Option<u64> {
        self.slow_threshold
    }

    /// Counts one slow routed query (the caller records the ring entry).
    pub fn note_slow(&self) {
        self.slow_queries.inc();
    }

    /// The slow-query ring buffer behind the routed `METRICS SLOW`.
    pub fn slow_ring(&self) -> &SlowRing {
        &self.slow_ring
    }

    /// Seconds since this router started serving.
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Renders the router's own families (uptime refreshed at scrape
    /// time) — appended after the merged shard exposition.
    pub fn render(&self) -> String {
        self.uptime.set(self.uptime_secs() as i64);
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qppt_obs::parse_exposition;

    #[test]
    fn render_is_valid_exposition() {
        let obs = RouterObs::new(2, Some(500));
        obs.record_request("RUN", 1_200);
        obs.record_rtt(0, 800);
        obs.record_rtt(1, 950);
        obs.note_retry();
        obs.note_reconnect();
        obs.note_failover();
        obs.note_replica_request(0, 1);
        obs.note_replica_request(0, 1);
        obs.set_replicas_live(3);
        obs.note_probe_recovery();
        obs.record_merge(40);
        obs.note_slow();
        let expo = parse_exposition(&obs.render()).expect("exposition parses");
        assert_eq!(
            expo.value("qppt_router_requests_total", &[("verb", "RUN")]),
            Some(1)
        );
        assert_eq!(expo.value("qppt_router_retries_total", &[]), Some(1));
        assert_eq!(expo.value("qppt_router_reconnects_total", &[]), Some(1));
        assert_eq!(expo.value("qppt_router_failovers_total", &[]), Some(1));
        assert_eq!(
            expo.value(
                "qppt_router_replica_requests_total",
                &[("shard", "0"), ("replica", "1")]
            ),
            Some(2)
        );
        assert_eq!(expo.value("qppt_router_replicas_live", &[]), Some(3));
        assert_eq!(
            expo.value("qppt_router_probe_recoveries_total", &[]),
            Some(1)
        );
        assert_eq!(expo.value("qppt_router_slow_queries_total", &[]), Some(1));
        assert_eq!(
            expo.value("qppt_router_shard_rtt_micros_count", &[("shard", "1")]),
            Some(1)
        );
        assert_eq!(expo.value("qppt_router_merge_micros_count", &[]), Some(1));
        assert_eq!(expo.kind("qppt_router_shard_rtt_micros"), Some("histogram"));
    }

    #[test]
    fn out_of_range_shard_rtt_is_ignored() {
        let obs = RouterObs::new(1, None);
        obs.record_rtt(7, 100);
        let expo = parse_exposition(&obs.render()).expect("exposition parses");
        assert_eq!(
            expo.value("qppt_router_shard_rtt_micros_count", &[("shard", "0")]),
            Some(0)
        );
    }
}
