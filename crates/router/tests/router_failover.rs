//! Replica failover end to end, driven by the chaos proxy: all 13 SSB
//! queries stay byte-identical to the single-node oracle while replicas
//! are killed before, during, and between requests — and the
//! `qppt_router_failovers_total` / `qppt_router_replicas_live` metrics
//! match the injected fault script exactly.
//!
//! Topology: 2 ranges × 2 replicas. Each range is one shard engine served
//! on one listener, with **two** chaos proxies in front of it — the two
//! proxy addresses are the range's replica set, so killing a "replica"
//! is killing its proxy while the data stays identical by construction
//! (which is exactly the property real replicas have: same `--shard i/n`,
//! same data).
//!
//! Script:
//! 1. baseline — fleet healthy, 13/13 byte-identical, 0 failovers, 4 live,
//!    and the round-robin read balancer spread the sweep over both
//!    replicas of every range (`qppt_router_replica_requests_total`);
//! 2. kill a range-0 replica **between requests** — the first query the
//!    rotation lands on it fails over to the sibling (1 failover, 3
//!    live), conviction drops it from the rotation so the rest of the
//!    sweep sees no further failovers;
//! 3. revive; the prober flips the replica back (4 live) without traffic;
//! 4. kill **during a response** (truncated `P` lines) — one failover,
//!    bytes still identical;
//! 5. flap the range-1 primary (kill → failover → revive → probe
//!    recovery);
//! 6. whole-range outage — one bounded structured `ERR range 0
//!    unavailable` in < 2 × (connect_timeout + read_timeout), the client
//!    connection survives, and the failover counter does **not** move.

use std::sync::Arc;
use std::time::{Duration, Instant};

use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_obs::parse_exposition;
use qppt_par::WorkerPool;
use qppt_router::{serve_router, ChaosMode, ChaosProxy, Router, RouterConfig, RouterObs};
use qppt_server::{serve, ClientError, QpptClient, ServeEngine};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::QueryResult;

const SF: f64 = 0.005;
const SEED: u64 = 42;
const RANGES: usize = 2;
const REPLICAS: usize = 2;

fn router_metric(router: &Router, name: &str) -> i64 {
    let obs = router.obs().expect("obs attached");
    parse_exposition(&obs.render())
        .expect("router exposition parses")
        .value(name, &[])
        .expect("metric present")
}

fn failovers(router: &Router) -> i64 {
    router_metric(router, "qppt_router_failovers_total")
}

/// Range exchanges answered by `replica` of `shard` (0 when the series
/// was never registered — that replica never answered).
fn replica_requests(router: &Router, shard: usize, replica: usize) -> i64 {
    let obs = router.obs().expect("obs attached");
    let (s, r) = (shard.to_string(), replica.to_string());
    parse_exposition(&obs.render())
        .expect("router exposition parses")
        .value(
            "qppt_router_replica_requests_total",
            &[("shard", s.as_str()), ("replica", r.as_str())],
        )
        .unwrap_or(0)
}

fn replicas_live(router: &Router) -> i64 {
    router_metric(router, "qppt_router_replicas_live")
}

/// Polls until the live gauge reaches `want` (the prober runs on its own
/// schedule).
fn wait_live(router: &Router, want: i64, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let live = replicas_live(router);
        if live == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replicas_live stuck at {live}, want {want}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Runs queries `ids` through the router and asserts byte-identity to the
/// oracle for each.
fn sweep(client: &mut QpptClient, oracle: &[(String, QueryResult)], ids: &[&str], phase: &str) {
    for id in ids {
        let expected = &oracle
            .iter()
            .find(|(q, _)| q == id)
            .expect("oracle has query")
            .1;
        let served = client
            .run(id, &[])
            .unwrap_or_else(|e| panic!("{phase}: {id} failed: {e:?}"));
        assert_eq!(&served.result, expected, "{phase}: {id} byte-identity");
    }
}

#[test]
fn failover_keeps_all_queries_byte_identical_with_exact_metrics() {
    let pool = WorkerPool::new(2, 8);
    let defaults = PlanOptions::default()
        .with_parallelism(2)
        .with_par_index_build(true);

    // One engine per range, each fronted by two chaos proxies = two
    // replicas serving identical data.
    let shards: Vec<_> = (0..RANGES)
        .map(|i| {
            let engine = Arc::new(
                ServeEngine::with_ssb_shard(SF, SEED, pool.clone(), defaults, i, RANGES)
                    .expect("shard engine builds"),
            );
            serve(engine, "127.0.0.1:0").expect("shard binds")
        })
        .collect();
    let proxies: Vec<Vec<Arc<ChaosProxy>>> = shards
        .iter()
        .map(|h| {
            (0..REPLICAS)
                .map(|_| ChaosProxy::start(h.addr().to_string()).expect("proxy binds"))
                .collect()
        })
        .collect();
    let fleet: Vec<Vec<String>> = proxies
        .iter()
        .map(|range| range.iter().map(|p| p.addr()).collect())
        .collect();

    let connect_timeout = Duration::from_secs(2);
    let read_timeout = Duration::from_secs(5);
    let mut config = RouterConfig::with_fleet(fleet);
    config.connect_timeout = connect_timeout;
    config.read_timeout = read_timeout;
    config.retry_budget = 4;
    config.retry_backoff = Duration::from_millis(5);
    config.retry_backoff_cap = Duration::from_millis(50);
    config.probe_interval = Duration::from_millis(50);
    config.probe_backoff_cap = Duration::from_millis(200);
    let router = Arc::new(Router::new(config).with_obs(RouterObs::new(RANGES, None)));
    router
        .wait_for_shards(Duration::from_secs(60))
        .expect("fleet answers PING through the proxies");
    let rh = serve_router(router.clone(), "127.0.0.1:0").expect("router binds");

    // The single-node oracle: same data, no sharding, no replication.
    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(SF, SEED);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).expect("indexes build");
    }
    let engine = QpptEngine::new(&ssb.db);
    let oracle: Vec<(String, QueryResult)> = queries::all_queries()
        .into_iter()
        .map(|q| {
            let expected = engine.run(&q, &opts).expect("oracle runs");
            (q.id.to_string(), expected)
        })
        .collect();
    let all_ids: Vec<&str> = oracle.iter().map(|(id, _)| id.as_str()).collect();

    let mut client = QpptClient::connect(rh.addr()).expect("connect router");

    // 1. Baseline: healthy fleet, no failovers, everything live — and the
    // round-robin read balancer spread the sweep over *both* replicas of
    // every range (each range answers once per routed query).
    sweep(&mut client, &oracle, &all_ids, "baseline");
    assert_eq!(failovers(&router), 0, "baseline failovers");
    assert_eq!(replicas_live(&router), 4, "baseline live");
    for shard in 0..RANGES {
        let counts: Vec<i64> = (0..REPLICAS)
            .map(|r| replica_requests(&router, shard, r))
            .collect();
        assert!(
            counts.iter().all(|&c| c > 0),
            "shard {shard} read spread: {counts:?}"
        );
        assert_eq!(
            counts.iter().sum::<i64>(),
            all_ids.len() as i64,
            "shard {shard} answers one exchange per routed query"
        );
    }

    // 2. Kill one range-0 replica between requests. The first query the
    // rotation lands on it fails over to the sibling (exactly one
    // failover); conviction drops the dead replica out of the rotation,
    // so the rest of the sweep rides the live sibling directly.
    proxies[0][0].kill();
    sweep(&mut client, &oracle, &all_ids, "primary killed");
    assert_eq!(failovers(&router), 1, "kill-primary failovers");
    assert_eq!(replicas_live(&router), 3, "kill-primary live");

    // 3. Revive: the prober flips the replica back without any traffic.
    proxies[0][0].revive().expect("revive primary");
    wait_live(&router, 4, Duration::from_secs(10));
    assert!(
        router_metric(&router, "qppt_router_probe_recoveries_total") >= 1,
        "recovery came from the prober"
    );

    // 4. Kill during the response: the faulty replica truncates after 3
    // lines (status + header + one `P` row), so the router sees a
    // mid-body death and fails over — bytes still identical, exactly one
    // more failover. Two queries, because round-robin guarantees only
    // that one of two consecutive requests lands on the faulty replica
    // (the other rides its live sibling; after the first hit it is
    // convicted and drops out of the rotation). Pass is restored before
    // the rest of the sweep so the counter stays exact.
    proxies[0][0].set_mode(ChaosMode::Truncate(3));
    sweep(
        &mut client,
        &oracle,
        &all_ids[..2],
        "truncated mid-response",
    );
    assert_eq!(failovers(&router), 2, "truncate failovers");
    proxies[0][0].set_mode(ChaosMode::Pass);
    wait_live(&router, 4, Duration::from_secs(10));
    sweep(&mut client, &oracle, &all_ids[2..], "after truncate");
    assert_eq!(failovers(&router), 2, "sweep after truncate is clean");

    // 5. Flap a range-1 replica: kill (one failover within two queries,
    // as in step 4), revive (probe recovery), then a clean sweep.
    proxies[1][0].kill();
    sweep(
        &mut client,
        &oracle,
        &all_ids[..2],
        "range-1 primary killed",
    );
    assert_eq!(failovers(&router), 3, "flap failovers");
    assert_eq!(replicas_live(&router), 3, "flap live");
    proxies[1][0].revive().expect("revive range-1 primary");
    wait_live(&router, 4, Duration::from_secs(10));
    sweep(&mut client, &oracle, &all_ids, "after flap");
    assert_eq!(failovers(&router), 3, "sweep after flap is clean");

    // 6. Whole-range outage: both range-0 replicas die. The client gets
    // one bounded structured error — never a hang, never a partial-as-
    // complete — the connection survives, and no failover is recorded
    // (nothing succeeded).
    proxies[0][0].kill();
    proxies[0][1].kill();
    let t0 = Instant::now();
    match client.run(all_ids[0], &[]) {
        Err(ClientError::Server(msg)) => {
            assert!(
                msg.contains("range 0 unavailable"),
                "want structured range error, got: {msg}"
            );
        }
        other => panic!("want ERR range 0 unavailable, got {other:?}"),
    }
    assert!(
        t0.elapsed() < 2 * (connect_timeout + read_timeout),
        "whole-range outage must error within the bound, took {:?}",
        t0.elapsed()
    );
    assert_eq!(failovers(&router), 3, "an outage is not a failover");
    assert_eq!(replicas_live(&router), 2, "outage live");
    client
        .ping()
        .expect("router connection survives the outage");

    // Revive the range and finish with a full byte-identical sweep.
    proxies[0][0].revive().expect("revive replica 0");
    proxies[0][1].revive().expect("revive replica 1");
    wait_live(&router, 4, Duration::from_secs(10));
    sweep(&mut client, &oracle, &all_ids, "after outage");
    assert_eq!(failovers(&router), 3, "final failover count");

    client.quit().expect("clean quit");
    rh.stop();
    for range in &proxies {
        for p in range {
            p.kill();
        }
    }
    for h in shards {
        h.stop();
    }
    pool.shutdown();
}
