//! Replica failover end to end, driven by the chaos proxy: all 13 SSB
//! queries stay byte-identical to the single-node oracle while replicas
//! are killed before, during, and between requests — and the
//! `qppt_router_failovers_total` / `qppt_router_replicas_live` metrics
//! match the injected fault script exactly.
//!
//! Topology: 2 ranges × 2 replicas. Each range is one shard engine served
//! on one listener, with **two** chaos proxies in front of it — the two
//! proxy addresses are the range's replica set, so killing a "replica"
//! is killing its proxy while the data stays identical by construction
//! (which is exactly the property real replicas have: same `--shard i/n`,
//! same data).
//!
//! Script:
//! 1. baseline — fleet healthy, 13/13 byte-identical, 0 failovers, 4 live,
//!    and the round-robin read balancer spread the sweep over both
//!    replicas of every range (`qppt_router_replica_requests_total`);
//! 2. kill a range-0 replica **between requests** — the first query the
//!    rotation lands on it fails over to the sibling (1 failover, 3
//!    live), conviction drops it from the rotation so the rest of the
//!    sweep sees no further failovers;
//! 3. revive; the prober flips the replica back (4 live) without traffic;
//! 4. kill **during a response** (truncated `P` lines) — one failover,
//!    bytes still identical;
//! 5. flap the range-1 primary (kill → failover → revive → probe
//!    recovery);
//! 6. whole-range outage — one bounded structured `ERR range 0
//!    unavailable` in < 2 × (connect_timeout + read_timeout), the client
//!    connection survives, and the failover counter does **not** move.

use std::sync::Arc;
use std::time::{Duration, Instant};

use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_obs::parse_exposition;
use qppt_par::WorkerPool;
use qppt_router::{
    serve_router, ChaosMode, ChaosProxy, Router, RouterCacheConfig, RouterConfig, RouterObs,
};
use qppt_server::{serve, ClientError, QpptClient, ServeEngine};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::QueryResult;

const SF: f64 = 0.005;
const SEED: u64 = 42;
const RANGES: usize = 2;
const REPLICAS: usize = 2;

fn router_metric(router: &Router, name: &str) -> i64 {
    let obs = router.obs().expect("obs attached");
    parse_exposition(&obs.render())
        .expect("router exposition parses")
        .value(name, &[])
        .expect("metric present")
}

fn failovers(router: &Router) -> i64 {
    router_metric(router, "qppt_router_failovers_total")
}

/// Range exchanges answered by `replica` of `shard` (0 when the series
/// was never registered — that replica never answered).
fn replica_requests(router: &Router, shard: usize, replica: usize) -> i64 {
    let obs = router.obs().expect("obs attached");
    let (s, r) = (shard.to_string(), replica.to_string());
    parse_exposition(&obs.render())
        .expect("router exposition parses")
        .value(
            "qppt_router_replica_requests_total",
            &[("shard", s.as_str()), ("replica", r.as_str())],
        )
        .unwrap_or(0)
}

fn replicas_live(router: &Router) -> i64 {
    router_metric(router, "qppt_router_replicas_live")
}

/// Polls until the live gauge reaches `want` (the prober runs on its own
/// schedule).
fn wait_live(router: &Router, want: i64, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let live = replicas_live(router);
        if live == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replicas_live stuck at {live}, want {want}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Runs queries `ids` through the router and asserts byte-identity to the
/// oracle for each.
fn sweep(client: &mut QpptClient, oracle: &[(String, QueryResult)], ids: &[&str], phase: &str) {
    for id in ids {
        let expected = &oracle
            .iter()
            .find(|(q, _)| q == id)
            .expect("oracle has query")
            .1;
        let served = client
            .run(id, &[])
            .unwrap_or_else(|e| panic!("{phase}: {id} failed: {e:?}"));
        assert_eq!(&served.result, expected, "{phase}: {id} byte-identity");
    }
}

#[test]
fn failover_keeps_all_queries_byte_identical_with_exact_metrics() {
    let pool = WorkerPool::new(2, 8);
    let defaults = PlanOptions::default()
        .with_parallelism(2)
        .with_par_index_build(true);

    // One engine per range, each fronted by two chaos proxies = two
    // replicas serving identical data.
    let shards: Vec<_> = (0..RANGES)
        .map(|i| {
            let engine = Arc::new(
                ServeEngine::with_ssb_shard(SF, SEED, pool.clone(), defaults, i, RANGES)
                    .expect("shard engine builds"),
            );
            serve(engine, "127.0.0.1:0").expect("shard binds")
        })
        .collect();
    let proxies: Vec<Vec<Arc<ChaosProxy>>> = shards
        .iter()
        .map(|h| {
            (0..REPLICAS)
                .map(|_| ChaosProxy::start(h.addr().to_string()).expect("proxy binds"))
                .collect()
        })
        .collect();
    let fleet: Vec<Vec<String>> = proxies
        .iter()
        .map(|range| range.iter().map(|p| p.addr()).collect())
        .collect();

    let connect_timeout = Duration::from_secs(2);
    let read_timeout = Duration::from_secs(5);
    let mut config = RouterConfig::with_fleet(fleet);
    config.connect_timeout = connect_timeout;
    config.read_timeout = read_timeout;
    config.retry_budget = 4;
    config.retry_backoff = Duration::from_millis(5);
    config.retry_backoff_cap = Duration::from_millis(50);
    config.probe_interval = Duration::from_millis(50);
    config.probe_backoff_cap = Duration::from_millis(200);
    // The fault script pins *exact* failover and replica-request counts
    // across repeated sweeps of the same 13 queries — the router cache
    // would serve repeats without touching the fleet, so it stays off
    // here (router_equivalence exercises caching under chaos).
    config.cache = RouterCacheConfig::disabled();
    let router = Arc::new(Router::new(config).with_obs(RouterObs::new(RANGES, None)));
    router
        .wait_for_shards(Duration::from_secs(60))
        .expect("fleet answers PING through the proxies");
    let rh = serve_router(router.clone(), "127.0.0.1:0").expect("router binds");

    // The single-node oracle: same data, no sharding, no replication.
    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(SF, SEED);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).expect("indexes build");
    }
    let engine = QpptEngine::new(&ssb.db);
    let oracle: Vec<(String, QueryResult)> = queries::all_queries()
        .into_iter()
        .map(|q| {
            let expected = engine.run(&q, &opts).expect("oracle runs");
            (q.id.to_string(), expected)
        })
        .collect();
    let all_ids: Vec<&str> = oracle.iter().map(|(id, _)| id.as_str()).collect();

    let mut client = QpptClient::connect(rh.addr()).expect("connect router");

    // 1. Baseline: healthy fleet, no failovers, everything live — and the
    // round-robin read balancer spread the sweep over *both* replicas of
    // every range (each range answers once per routed query).
    sweep(&mut client, &oracle, &all_ids, "baseline");
    assert_eq!(failovers(&router), 0, "baseline failovers");
    assert_eq!(replicas_live(&router), 4, "baseline live");
    for shard in 0..RANGES {
        let counts: Vec<i64> = (0..REPLICAS)
            .map(|r| replica_requests(&router, shard, r))
            .collect();
        assert!(
            counts.iter().all(|&c| c > 0),
            "shard {shard} read spread: {counts:?}"
        );
        assert_eq!(
            counts.iter().sum::<i64>(),
            all_ids.len() as i64,
            "shard {shard} answers one exchange per routed query"
        );
    }

    // 2. Kill one range-0 replica between requests. The first query the
    // rotation lands on it fails over to the sibling (exactly one
    // failover); conviction drops the dead replica out of the rotation,
    // so the rest of the sweep rides the live sibling directly.
    proxies[0][0].kill();
    sweep(&mut client, &oracle, &all_ids, "primary killed");
    assert_eq!(failovers(&router), 1, "kill-primary failovers");
    assert_eq!(replicas_live(&router), 3, "kill-primary live");

    // 3. Revive: the prober flips the replica back without any traffic.
    proxies[0][0].revive().expect("revive primary");
    wait_live(&router, 4, Duration::from_secs(10));
    assert!(
        router_metric(&router, "qppt_router_probe_recoveries_total") >= 1,
        "recovery came from the prober"
    );

    // 4. Kill during the response: the faulty replica truncates after 3
    // lines (status + header + one `P` row), so the router sees a
    // mid-body death and fails over — bytes still identical, exactly one
    // more failover. Two queries, because round-robin guarantees only
    // that one of two consecutive requests lands on the faulty replica
    // (the other rides its live sibling; after the first hit it is
    // convicted and drops out of the rotation). Pass is restored before
    // the rest of the sweep so the counter stays exact.
    proxies[0][0].set_mode(ChaosMode::Truncate(3));
    sweep(
        &mut client,
        &oracle,
        &all_ids[..2],
        "truncated mid-response",
    );
    assert_eq!(failovers(&router), 2, "truncate failovers");
    proxies[0][0].set_mode(ChaosMode::Pass);
    wait_live(&router, 4, Duration::from_secs(10));
    sweep(&mut client, &oracle, &all_ids[2..], "after truncate");
    assert_eq!(failovers(&router), 2, "sweep after truncate is clean");

    // 5. Flap a range-1 replica: kill (one failover within two queries,
    // as in step 4), revive (probe recovery), then a clean sweep.
    proxies[1][0].kill();
    sweep(
        &mut client,
        &oracle,
        &all_ids[..2],
        "range-1 primary killed",
    );
    assert_eq!(failovers(&router), 3, "flap failovers");
    assert_eq!(replicas_live(&router), 3, "flap live");
    proxies[1][0].revive().expect("revive range-1 primary");
    wait_live(&router, 4, Duration::from_secs(10));
    sweep(&mut client, &oracle, &all_ids, "after flap");
    assert_eq!(failovers(&router), 3, "sweep after flap is clean");

    // 6. Whole-range outage: both range-0 replicas die. The client gets
    // one bounded structured error — never a hang, never a partial-as-
    // complete — the connection survives, and no failover is recorded
    // (nothing succeeded).
    proxies[0][0].kill();
    proxies[0][1].kill();
    let t0 = Instant::now();
    match client.run(all_ids[0], &[]) {
        Err(ClientError::Server(msg)) => {
            assert!(
                msg.contains("range 0 unavailable"),
                "want structured range error, got: {msg}"
            );
        }
        other => panic!("want ERR range 0 unavailable, got {other:?}"),
    }
    assert!(
        t0.elapsed() < 2 * (connect_timeout + read_timeout),
        "whole-range outage must error within the bound, took {:?}",
        t0.elapsed()
    );
    assert_eq!(failovers(&router), 3, "an outage is not a failover");
    assert_eq!(replicas_live(&router), 2, "outage live");
    client
        .ping()
        .expect("router connection survives the outage");

    // Revive the range and finish with a full byte-identical sweep.
    proxies[0][0].revive().expect("revive replica 0");
    proxies[0][1].revive().expect("revive replica 1");
    wait_live(&router, 4, Duration::from_secs(10));
    sweep(&mut client, &oracle, &all_ids, "after outage");
    assert_eq!(failovers(&router), 3, "final failover count");

    client.quit().expect("clean quit");
    rh.stop();
    for range in &proxies {
        for p in range {
            p.kill();
        }
    }
    for h in shards {
        h.stop();
    }
    pool.shutdown();
}

/// The router cache under chaos: a topology swap invalidates every merged
/// entry via the generation while the surviving ranges' partials keep
/// hitting (the re-merge touches **zero** shards), replica death leaves
/// warm merged hits serving untouched (the data cannot have changed — only
/// the transport did), and `CACHE CLEAR` re-scatters cold, not stale.
/// Byte-identity to the single-node oracle holds throughout.
#[test]
fn cached_serving_survives_topology_swaps_and_replica_chaos() {
    let pool = WorkerPool::new(2, 8);
    let defaults = PlanOptions::default()
        .with_parallelism(2)
        .with_par_index_build(true);

    let shards: Vec<_> = (0..RANGES)
        .map(|i| {
            // Instrumented shards: the final cross-surface check scrapes
            // the fleet-merged METRICS exposition through the router.
            let engine = Arc::new(
                ServeEngine::with_ssb_shard(SF, SEED, pool.clone(), defaults, i, RANGES)
                    .expect("shard engine builds")
                    .with_obs(qppt_server::ServeObs::new(None)),
            );
            serve(engine, "127.0.0.1:0").expect("shard binds")
        })
        .collect();
    let proxies: Vec<Vec<Arc<ChaosProxy>>> = shards
        .iter()
        .map(|h| {
            (0..REPLICAS)
                .map(|_| ChaosProxy::start(h.addr().to_string()).expect("proxy binds"))
                .collect()
        })
        .collect();
    let fleet: Vec<Vec<String>> = proxies
        .iter()
        .map(|range| range.iter().map(|p| p.addr()).collect())
        .collect();

    let mut config = RouterConfig::with_fleet(fleet.clone());
    config.probe_interval = Duration::from_millis(50);
    // A staleness bound far past the test's runtime: once a range's
    // version vector is probed it stays trusted, so every post-phase
    // counter below is exact (no re-probe races).
    config.cache.probe_interval = Duration::from_secs(60);
    let router = Arc::new(Router::new(config).with_obs(RouterObs::new(RANGES, None)));
    router
        .wait_for_shards(Duration::from_secs(60))
        .expect("fleet answers PING through the proxies");
    let rh = serve_router(router.clone(), "127.0.0.1:0").expect("router binds");

    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(SF, SEED);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).expect("indexes build");
    }
    let engine = QpptEngine::new(&ssb.db);
    let ids = ["q1.1", "q2.3", "q3.1"];
    let oracle: Vec<(String, QueryResult)> = queries::all_queries()
        .into_iter()
        .filter(|q| ids.contains(&q.id.to_ascii_lowercase().as_str()))
        .map(|q| {
            let expected = engine.run(&q, &opts).expect("oracle runs");
            (q.id.to_ascii_lowercase(), expected)
        })
        .collect();
    let n = ids.len() as u64;

    let mut client = QpptClient::connect(rh.addr()).expect("connect router");
    let stat = |kvs: &[(String, String)], key: &str| -> u64 {
        kvs.iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or_else(|| panic!("missing/non-numeric CACHE STATS field {key}"))
    };
    let fleet_exchanges = |router: &Router| -> i64 {
        (0..RANGES)
            .map(|s| {
                (0..REPLICAS)
                    .map(|r| replica_requests(router, s, r))
                    .sum::<i64>()
            })
            .sum()
    };

    // Phase 1 — cold fill + warm merged hits.
    sweep(&mut client, &oracle, &ids, "cache-on cold");
    sweep(&mut client, &oracle, &ids, "cache-on warm");
    let s1 = client.cache_stats().expect("stats");
    assert_eq!(
        stat(&s1, "router_result_misses"),
        n,
        "one merged miss per cold query"
    );
    assert_eq!(
        stat(&s1, "router_result_hits"),
        n,
        "one merged hit per warm query"
    );
    assert_eq!(stat(&s1, "router_partial_misses"), n * RANGES as u64);
    assert_eq!(
        stat(&s1, "router_probes"),
        RANGES as u64,
        "first cold query probes each range once"
    );
    let exchanges_cold = fleet_exchanges(&router);
    assert_eq!(
        exchanges_cold,
        (n as i64) * RANGES as i64,
        "warm hits never touch the fleet"
    );

    // Phase 2 — swap to the *same* fleet: a new topology generation. Every
    // merged entry invalidates; every partial (keyed without a generation,
    // versioned by its shard alone) survives — the re-merge is answered
    // entirely router-side, with zero shard exchanges.
    router
        .swap_fleet(fleet.clone())
        .expect("swap to same fleet");
    sweep(&mut client, &oracle, &ids, "after swap");
    let s2 = client.cache_stats().expect("stats");
    assert_eq!(
        stat(&s2, "router_result_invalidations") - stat(&s1, "router_result_invalidations"),
        n,
        "the swap invalidates every merged entry"
    );
    assert_eq!(
        stat(&s2, "router_result_misses"),
        stat(&s1, "router_result_misses")
    );
    assert_eq!(
        stat(&s2, "router_partial_hits") - stat(&s1, "router_partial_hits"),
        n * RANGES as u64,
        "every range's partial survives the swap"
    );
    assert_eq!(
        stat(&s2, "router_partial_misses"),
        stat(&s1, "router_partial_misses")
    );
    assert_eq!(stat(&s2, "router_partial_invalidations"), 0);
    assert_eq!(
        stat(&s2, "router_probes") - stat(&s1, "router_probes"),
        RANGES as u64,
        "the new generation re-probes each range once"
    );
    assert_eq!(
        fleet_exchanges(&router),
        exchanges_cold,
        "the post-swap re-merge is assembled without scattering"
    );

    // Phase 3 — kill a replica. Warm merged hits keep serving: within the
    // staleness bound the data cannot have changed, so the dead transport
    // is never consulted and no failover fires.
    proxies[0][0].kill();
    sweep(&mut client, &oracle, &ids, "replica dead, cache warm");
    // Failovers are read before CACHE STATS: the stats *broadcast* itself
    // fans out to the fleet and is allowed to fail over — the cached
    // query path above must not have.
    assert_eq!(failovers(&router), 0, "cached hits cannot fail over");
    assert_eq!(fleet_exchanges(&router), exchanges_cold);
    let s3 = client.cache_stats().expect("stats");
    assert_eq!(
        stat(&s3, "router_result_hits") - stat(&s2, "router_result_hits"),
        n,
        "cached serving is unaffected by the dead replica"
    );
    assert_eq!(stat(&s3, "router_probes"), stat(&s2, "router_probes"));

    // Phase 4 — revive, then CACHE CLEAR: cleared is *cold*, not stale.
    // The sweep re-scatters in full (fresh misses, no invalidations) and
    // the kept version vectors mean no re-probe either.
    proxies[0][0].revive().expect("revive replica");
    wait_live(&router, (RANGES * REPLICAS) as i64, Duration::from_secs(10));
    client.cache_clear().expect("routed CACHE CLEAR");
    sweep(&mut client, &oracle, &ids, "after clear");
    let s4 = client.cache_stats().expect("stats");
    assert_eq!(
        stat(&s4, "router_result_misses") - stat(&s3, "router_result_misses"),
        n,
        "cleared entries re-fill as misses"
    );
    assert_eq!(
        stat(&s4, "router_partial_misses") - stat(&s3, "router_partial_misses"),
        n * RANGES as u64
    );
    assert_eq!(
        stat(&s4, "router_result_invalidations"),
        stat(&s3, "router_result_invalidations")
    );
    assert_eq!(
        stat(&s4, "router_probes"),
        stat(&s3, "router_probes"),
        "CACHE CLEAR keeps the probed version vectors"
    );
    assert_eq!(
        fleet_exchanges(&router) - exchanges_cold,
        (n as i64) * RANGES as i64,
        "the post-clear sweep scatters in full"
    );

    // The routed METRICS exposition agrees with CACHE STATS field for
    // field — both read one snapshot of the same tiers.
    let expo = parse_exposition(&client.metrics().expect("routed METRICS"))
        .expect("merged exposition parses");
    for (tier, prefix) in [("result", "router_result"), ("partial", "router_partial")] {
        for (family, field) in [
            ("qppt_router_cache_hits_total", "hits"),
            ("qppt_router_cache_misses_total", "misses"),
            ("qppt_router_cache_invalidations_total", "invalidations"),
        ] {
            assert_eq!(
                expo.value(family, &[("tier", tier)]),
                Some(stat(&s4, &format!("{prefix}_{field}")) as i64),
                "{family}{{tier={tier}}} must equal CACHE STATS {prefix}_{field}"
            );
        }
    }
    assert_eq!(
        expo.value("qppt_router_cache_probes_total", &[]),
        Some(stat(&s4, "router_probes") as i64)
    );

    client.quit().expect("clean quit");
    rh.stop();
    for range in &proxies {
        for p in range {
            p.kill();
        }
    }
    for h in shards {
        h.stop();
    }
    pool.shutdown();
}
