//! The distributed serving contract, end to end over real TCP:
//!
//! * all 13 SSB queries through a {1, 2, 4}-shard router, at per-request
//!   parallelism {1, 4}, every merged response **byte-identical** to the
//!   sequential single-node engine;
//! * `INFO` fan-out reports the exact fleet row total and shard map;
//! * ad-hoc `QUERY` through the router hits the shard-local dimension-σ
//!   cache tier with exact counters (σ families are shared per shard,
//!   across distinct queries);
//! * the router-side result cache never changes bytes — cold fill, warm
//!   merged-tier hit, and per-request `cache=off` bypass all match the
//!   oracle at every shard count, with exact `router_result_*` /
//!   `router_partial_*` counters;
//! * a write to **one** shard invalidates exactly that range's partial
//!   and the merged results composed from it — the untouched range's
//!   partial keeps hitting and only the written range is re-scattered.

use std::sync::Arc;
use std::time::Duration;

use qppt_cache::QueryCache;
use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_par::WorkerPool;
use qppt_router::{serve_router, Router, RouterConfig};
use qppt_server::{serve, QpptClient, ServeEngine, ServerHandle};
use qppt_ssb::{queries, SsbDb};
use qppt_storage::Database;

const SF: f64 = 0.01;
const SEED: u64 = 42;

struct Fleet {
    pool: Arc<WorkerPool>,
    shards: Vec<ServerHandle>,
    router: ServerHandle,
}

fn start_fleet(shards: usize) -> Fleet {
    let pool = WorkerPool::new(4, 16);
    let defaults = PlanOptions::default()
        .with_parallelism(2)
        .with_par_index_build(true);
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..shards {
        let engine = ServeEngine::with_ssb_shard(SF, SEED, pool.clone(), defaults, i, shards)
            .expect("shard engine builds");
        let h = serve(Arc::new(engine), "127.0.0.1:0").expect("shard binds");
        addrs.push(h.addr().to_string());
        handles.push(h);
    }
    let router = Arc::new(Router::new(RouterConfig::new(addrs)));
    router
        .wait_for_shards(Duration::from_secs(30))
        .expect("shards answer PING");
    let router = serve_router(router, "127.0.0.1:0").expect("router binds");
    Fleet {
        pool,
        shards: handles,
        router,
    }
}

impl Fleet {
    fn stop(self) {
        self.router.stop();
        for h in self.shards {
            h.stop();
        }
        self.pool.shutdown();
    }
}

fn field<'a>(kvs: &'a [(String, String)], key: &str) -> &'a str {
    kvs.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("missing field {key} in {kvs:?}"))
}

#[test]
fn thirteen_queries_byte_identical_at_every_shard_count() {
    // The oracle: the sequential engine over the full, unsharded instance.
    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(SF, SEED);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).expect("indexes build");
    }
    let total_rows = ssb
        .db
        .table("lineorder")
        .expect("fact table")
        .table()
        .row_count();
    let oracle = QpptEngine::new(&ssb.db);
    let all = queries::all_queries();
    let expected: Vec<_> = all
        .iter()
        .map(|q| oracle.run(q, &opts).expect("oracle runs"))
        .collect();

    for shards in [1usize, 2, 4] {
        let fleet = start_fleet(shards);
        let mut client = QpptClient::connect(fleet.router.addr()).expect("connect router");

        // INFO fan-out: the shard row counts must sum to the full table.
        let info = client.info().expect("router INFO");
        assert_eq!(field(&info, "shards"), shards.to_string());
        assert_eq!(
            field(&info, "rows"),
            total_rows.to_string(),
            "fleet rows must sum to the unsharded instance at {shards} shards"
        );
        for i in 0..shards {
            assert_eq!(
                field(&info, &format!("shard{i}")),
                fleet.shards[i].addr().to_string()
            );
        }
        // The router reports its own uptime and build, plus the fleet's
        // uptime spread (shards started before the router dialed them).
        let _router_uptime: u64 = field(&info, "uptime_secs").parse().expect("uptime parses");
        let uptime_min: u64 = field(&info, "uptime_min_secs").parse().expect("min parses");
        let uptime_max: u64 = field(&info, "uptime_max_secs").parse().expect("max parses");
        assert!(uptime_min <= uptime_max, "shard uptime spread is ordered");
        assert_eq!(field(&info, "build"), env!("CARGO_PKG_VERSION"));

        for par in ["1", "4"] {
            for (qi, q) in all.iter().enumerate() {
                let served = client
                    .run(&q.id.to_ascii_lowercase(), &[("parallelism", par)])
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} via {shards}-shard router (parallelism {par}): {e}",
                            q.id
                        )
                    });
                // Byte-identical: same labels, same rows in the same
                // order, same aggregate values — whatever the shard count
                // and per-shard parallelism.
                assert_eq!(
                    served.result, expected[qi],
                    "{} through {shards}-shard router at parallelism {par}",
                    q.id
                );
            }
        }
        client.quit().expect("clean quit");
        fleet.stop();
    }
}

#[test]
fn adhoc_queries_share_shard_local_sigma_families() {
    // Two distinct ad-hoc queries with identical dimension σ families
    // (same predicates, same carried columns) but a different group-key
    // order — a different plan, a different selection fingerprint. The
    // second must hit the dimension tier on *every* shard.
    let adhoc_a = "fact=lineorder \
         dim=supplier[join=s_suppkey:lo_suppkey;s_region='ASIA';carry=s_nation] \
         dim=date[join=d_datekey:lo_orderdate;d_year between 1993 and 1996;carry=d_year] \
         agg=sum(lo_revenue):rev group=supplier.s_nation,date.d_year \
         order=group:0,group:1 id=sigma-a";
    let adhoc_b = "fact=lineorder \
         dim=supplier[join=s_suppkey:lo_suppkey;s_region='ASIA';carry=s_nation] \
         dim=date[join=d_datekey:lo_orderdate;d_year between 1993 and 1996;carry=d_year] \
         agg=sum(lo_revenue):rev group=date.d_year,supplier.s_nation \
         order=group:0,group:1 id=sigma-b";
    // Dim 0 (supplier) is *fused* into the select-join under the default
    // plan options and never touches the dimension tier; only the date σ
    // is materialized and cached. So: one dim-tier event per query per
    // shard.
    const CACHED_DIMS: u64 = 1;
    const SHARDS: u64 = 2;

    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(SF, SEED);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).expect("indexes build");
    }
    let spec_a = qppt_query::parse(adhoc_a).expect("ad-hoc A parses");
    let spec_b = qppt_query::parse(adhoc_b).expect("ad-hoc B parses");
    prepare_indexes(&mut ssb.db, &spec_a, &opts).expect("A indexes build");
    prepare_indexes(&mut ssb.db, &spec_b, &opts).expect("B indexes build");
    let oracle = QpptEngine::new(&ssb.db);
    let expected_a = oracle.run(&spec_a, &opts).expect("oracle runs A");
    let expected_b = oracle.run(&spec_b, &opts).expect("oracle runs B");

    let fleet = start_fleet(SHARDS as usize);
    let mut client = QpptClient::connect(fleet.router.addr()).expect("connect router");

    let stat = |kvs: &[(String, String)], key: &str| -> u64 {
        field(kvs, key)
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric {key}"))
    };
    let s0 = client.cache_stats().expect("stats");
    assert_eq!(field(&s0, "shards"), SHARDS.to_string());

    let served_a = client.query(adhoc_a, &[]).expect("A through router");
    assert_eq!(served_a.result, expected_a, "ad-hoc A through router");
    let s1 = client.cache_stats().expect("stats");
    // First sighting of the σ family: every shard materializes both
    // dimension selections itself — summed across the fleet by STATS.
    assert_eq!(
        stat(&s1, "dim_misses") - stat(&s0, "dim_misses"),
        CACHED_DIMS * SHARDS,
        "ad-hoc A must build {CACHED_DIMS} σ selection(s) on each of {SHARDS} shards"
    );
    assert_eq!(stat(&s1, "dim_hits"), stat(&s0, "dim_hits"));

    let served_b = client.query(adhoc_b, &[]).expect("B through router");
    assert_eq!(served_b.result, expected_b, "ad-hoc B through router");
    let s2 = client.cache_stats().expect("stats");
    // Same σ families, different query: shard-local sharing, exactly once
    // per family per shard.
    assert_eq!(
        stat(&s2, "dim_hits") - stat(&s1, "dim_hits"),
        CACHED_DIMS * SHARDS,
        "ad-hoc B must share {CACHED_DIMS} σ selection(s) on each of {SHARDS} shards"
    );
    assert_eq!(
        stat(&s2, "dim_misses"),
        stat(&s1, "dim_misses"),
        "ad-hoc B must not rebuild any σ selection"
    );

    client.quit().expect("clean quit");
    fleet.stop();
}

#[test]
fn router_cache_is_byte_identical_on_off_and_vs_oracle() {
    // The oracle: the sequential engine over the full, unsharded instance.
    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(SF, SEED);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).expect("indexes build");
    }
    let oracle = QpptEngine::new(&ssb.db);
    let all = queries::all_queries();
    let expected: Vec<_> = all
        .iter()
        .map(|q| oracle.run(q, &opts).expect("oracle runs"))
        .collect();
    let n = all.len() as u64;

    for shards in [1usize, 2, 4] {
        let fleet = start_fleet(shards);
        let mut client = QpptClient::connect(fleet.router.addr()).expect("connect router");
        let stat = |kvs: &[(String, String)], key: &str| -> u64 {
            field(kvs, key)
                .parse()
                .unwrap_or_else(|_| panic!("non-numeric {key}"))
        };

        // Cold sweep: every query fills the merged tier (one miss each)
        // and the partial tier (one miss per range each).
        let s0 = client.cache_stats().expect("stats");
        for (qi, q) in all.iter().enumerate() {
            let served = client
                .run(&q.id.to_ascii_lowercase(), &[])
                .unwrap_or_else(|e| panic!("{} cold at {shards} shards: {e}", q.id));
            assert_eq!(served.result, expected[qi], "{} cold bytes", q.id);
        }
        let s1 = client.cache_stats().expect("stats");
        assert_eq!(
            stat(&s1, "router_result_misses") - stat(&s0, "router_result_misses"),
            n,
            "one merged miss per cold query at {shards} shards"
        );
        assert_eq!(
            stat(&s1, "router_result_hits"),
            stat(&s0, "router_result_hits")
        );
        assert_eq!(
            stat(&s1, "router_partial_misses") - stat(&s0, "router_partial_misses"),
            n * shards as u64,
            "one partial miss per range per cold query"
        );

        // Warm sweep: every query is a merged-tier hit — the partial tier
        // is never consulted (the merged hit short-circuits the scatter).
        for (qi, q) in all.iter().enumerate() {
            let served = client
                .run(&q.id.to_ascii_lowercase(), &[])
                .unwrap_or_else(|e| panic!("{} warm at {shards} shards: {e}", q.id));
            assert_eq!(served.result, expected[qi], "{} warm bytes", q.id);
        }
        let s2 = client.cache_stats().expect("stats");
        assert_eq!(
            stat(&s2, "router_result_hits") - stat(&s1, "router_result_hits"),
            n,
            "one merged hit per warm query at {shards} shards"
        );
        assert_eq!(
            stat(&s2, "router_result_misses"),
            stat(&s1, "router_result_misses")
        );
        assert_eq!(
            stat(&s2, "router_partial_hits"),
            stat(&s1, "router_partial_hits")
        );
        assert_eq!(
            stat(&s2, "router_partial_misses"),
            stat(&s1, "router_partial_misses")
        );

        // Per-request bypass: `cache=off` never touches either router
        // tier and still matches the oracle byte for byte.
        for (qi, q) in all.iter().enumerate() {
            let served = client
                .run(&q.id.to_ascii_lowercase(), &[("cache", "off")])
                .unwrap_or_else(|e| panic!("{} cache=off at {shards} shards: {e}", q.id));
            assert_eq!(served.result, expected[qi], "{} cache=off bytes", q.id);
        }
        let s3 = client.cache_stats().expect("stats");
        for key in [
            "router_result_hits",
            "router_result_misses",
            "router_result_invalidations",
            "router_result_entries",
            "router_partial_hits",
            "router_partial_misses",
            "router_partial_invalidations",
            "router_partial_entries",
        ] {
            assert_eq!(
                stat(&s3, key),
                stat(&s2, key),
                "cache=off must leave {key} untouched at {shards} shards"
            );
        }
        assert_eq!(stat(&s3, "router_result_invalidations"), 0);
        assert_eq!(stat(&s3, "router_partial_invalidations"), 0);

        client.quit().expect("clean quit");
        fleet.stop();
    }
}

#[test]
fn single_shard_write_invalidates_exactly_that_range() {
    const SHARDS: usize = 2;
    let pool = WorkerPool::new(4, 16);
    let opts = PlanOptions::default();
    let defaults = PlanOptions::default().with_parallelism(2);

    // Externally owned shard databases and caches (the cache_throughput
    // pattern), so a write can land mid-test: stop the shard's listener,
    // mutate the then-uniquely-owned database, re-serve on the *same*
    // address — the router's shard map never moves, so the only signal a
    // cached entry can go stale on is the probed version vector.
    let mut dbs: Vec<Arc<Database>> = (0..SHARDS)
        .map(|i| {
            let mut ssb = SsbDb::generate_shard(SF, SEED, i, SHARDS);
            for q in queries::all_queries() {
                prepare_indexes(&mut ssb.db, &q, &opts).expect("indexes build");
            }
            Arc::new(ssb.db)
        })
        .collect();
    let caches: Vec<Arc<QueryCache>> = (0..SHARDS)
        .map(|_| Arc::new(QueryCache::default()))
        .collect();
    let serve_shard = |i: usize, db: Arc<Database>, addr: &str| -> ServerHandle {
        let engine = ServeEngine::over_db_with_cache(
            db,
            pool.clone(),
            defaults,
            SF,
            SEED,
            caches[i].clone(),
        )
        .with_shard_info(i, SHARDS);
        serve(Arc::new(engine), addr).expect("shard binds")
    };
    let mut handles: Vec<ServerHandle> = (0..SHARDS)
        .map(|i| serve_shard(i, dbs[i].clone(), "127.0.0.1:0"))
        .collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();

    // A short staleness bound so the test's one post-write sleep suffices
    // for the next lookup to re-probe instead of trusting the old vector.
    let mut config = RouterConfig::new(addrs.clone());
    config.cache.probe_interval = Duration::from_millis(50);
    let router = Arc::new(Router::new(config));
    router
        .wait_for_shards(Duration::from_secs(30))
        .expect("shards answer PING");
    let rh = serve_router(router, "127.0.0.1:0").expect("router binds");
    let mut client = QpptClient::connect(rh.addr()).expect("connect router");
    let stat = |kvs: &[(String, String)], key: &str| -> u64 {
        field(kvs, key)
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric {key}"))
    };

    // Cold fill + warm merged hit.
    let s0 = client.cache_stats().expect("stats");
    let cold = client.run("q2.3", &[]).expect("cold routed run");
    let warm = client.run("q2.3", &[]).expect("warm routed run");
    assert_eq!(warm.result, cold.result, "warm merged-hit bytes");
    let s1 = client.cache_stats().expect("stats");
    assert_eq!(
        stat(&s1, "router_result_misses") - stat(&s0, "router_result_misses"),
        1
    );
    assert_eq!(
        stat(&s1, "router_result_hits") - stat(&s0, "router_result_hits"),
        1
    );
    assert_eq!(
        stat(&s1, "router_partial_misses") - stat(&s0, "router_partial_misses"),
        2
    );
    assert_eq!(
        stat(&s1, "router_partial_hits"),
        stat(&s0, "router_partial_hits")
    );

    // The write: shard 0 restarts on its own address with one fact row
    // deleted — its table-version vector moves, shard 1's does not.
    let h0 = handles.remove(0);
    h0.stop();
    {
        let db0 = Arc::get_mut(&mut dbs[0]).expect("listener stopped; db uniquely owned");
        db0.delete_row("lineorder", 0).expect("the write lands");
    }
    handles.insert(0, serve_shard(0, dbs[0].clone(), &addrs[0]));
    // Sit out the staleness bound: the next lookup must re-probe.
    std::thread::sleep(Duration::from_millis(120));

    // Exactly range 0 is re-fetched: the merged entry and shard 0's
    // partial register as *invalidations* (same key, moved versions),
    // shard 1's partial keeps hitting, and nothing counts as a miss.
    let post = client.run("q2.3", &[]).expect("post-write routed run");
    let s2 = client.cache_stats().expect("stats");
    assert_eq!(
        stat(&s2, "router_result_invalidations") - stat(&s1, "router_result_invalidations"),
        1,
        "the write invalidates the merged entry"
    );
    assert_eq!(
        stat(&s2, "router_result_misses"),
        stat(&s1, "router_result_misses")
    );
    assert_eq!(
        stat(&s2, "router_result_hits"),
        stat(&s1, "router_result_hits")
    );
    assert_eq!(
        stat(&s2, "router_partial_invalidations") - stat(&s1, "router_partial_invalidations"),
        1,
        "only the written range's partial is invalidated"
    );
    assert_eq!(
        stat(&s2, "router_partial_hits") - stat(&s1, "router_partial_hits"),
        1,
        "the untouched range's partial keeps hitting"
    );
    assert_eq!(
        stat(&s2, "router_partial_misses"),
        stat(&s1, "router_partial_misses")
    );

    // Byte-identity of the re-merge: the cached path agrees with the
    // uncached router over the written fleet…
    let uncached = client
        .run("q2.3", &[("cache", "off")])
        .expect("uncached post-write run");
    assert_eq!(
        post.result, uncached.result,
        "post-write bytes match the uncached router"
    );
    let s3 = client.cache_stats().expect("stats");
    for key in [
        "router_result_hits",
        "router_result_misses",
        "router_result_invalidations",
        "router_partial_hits",
        "router_partial_misses",
        "router_partial_invalidations",
    ] {
        assert_eq!(stat(&s3, key), stat(&s2, key), "cache=off moved {key}");
    }

    // …and the re-merged entry serves warm hits again.
    let rewarm = client.run("q2.3", &[]).expect("re-warmed routed run");
    assert_eq!(rewarm.result, post.result, "re-warmed bytes");
    let s4 = client.cache_stats().expect("stats");
    assert_eq!(
        stat(&s4, "router_result_hits") - stat(&s3, "router_result_hits"),
        1
    );

    client.quit().expect("clean quit");
    rh.stop();
    for h in handles {
        h.stop();
    }
    pool.shutdown();
}
