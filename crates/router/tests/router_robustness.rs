//! Failure behavior of the router, end to end over real TCP:
//!
//! * killing a single-replica range turns the next query into a
//!   structured `ERR range <i> unavailable (…)` — the router connection
//!   keeps serving, and the surviving range is unaffected;
//! * restarting the shard at the same address heals the fleet on the very
//!   next request (fresh dial after the pooled connections were dropped);
//! * a slow shard (accept-then-hang, injected via the chaos proxy) trips
//!   the read-timeout bound — the error lands within
//!   `2 × (connect_timeout + read_timeout)`, never a hang;
//! * injected garbage (`ERR` plus trailing junk) is relayed with its
//!   `shard <i> replica <j>:` origin and the poisoned connection is
//!   dropped, never re-pooled;
//! * malformed and oversized request lines at the router get the same
//!   drain-and-`ERR` treatment as on a shard — never a dead connection.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_obs::parse_exposition;
use qppt_par::WorkerPool;
use qppt_router::{
    serve_router, ChaosMode, ChaosProxy, Router, RouterCacheConfig, RouterConfig, RouterObs,
};
use qppt_server::{serve, ClientError, QpptClient, ServeEngine};
use qppt_ssb::{queries, SsbDb};

const SF: f64 = 0.005;
const SEED: u64 = 42;

#[test]
fn shard_death_is_structured_and_restart_heals() {
    let pool = WorkerPool::new(2, 8);
    let defaults = PlanOptions::default()
        .with_parallelism(2)
        .with_par_index_build(true);
    // Keep the engines so shard 1 can be restarted on the same address
    // with the same data.
    let engines: Vec<Arc<ServeEngine>> = (0..2)
        .map(|i| {
            Arc::new(
                ServeEngine::with_ssb_shard(SF, SEED, pool.clone(), defaults, i, 2)
                    .expect("shard engine builds"),
            )
        })
        .collect();
    let shard0 = serve(engines[0].clone(), "127.0.0.1:0").expect("shard 0 binds");
    let shard1 = serve(engines[1].clone(), "127.0.0.1:0").expect("shard 1 binds");
    let shard0_addr = shard0.addr().to_string();
    let shard1_addr = shard1.addr().to_string();

    // Tight timeouts: a dead shard must fail fast, not hang the client.
    let mut config = RouterConfig::new(vec![shard0_addr.clone(), shard1_addr.clone()]);
    config.connect_timeout = Duration::from_secs(2);
    config.read_timeout = Duration::from_secs(10);
    // Cache off: a merged-tier hit would (correctly) absorb the repeated
    // q2.3 after the kill — this test is about the transport error path.
    config.cache = RouterCacheConfig::disabled();
    let router = Arc::new(Router::new(config));
    router
        .wait_for_shards(Duration::from_secs(30))
        .expect("shards answer PING");
    let rh = serve_router(router, "127.0.0.1:0").expect("router binds");

    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(SF, SEED);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).expect("indexes build");
    }
    let oracle = QpptEngine::new(&ssb.db);
    let expected = oracle.run(&queries::q2_3(), &opts).expect("oracle runs");

    let mut client = QpptClient::connect(rh.addr()).expect("connect router");
    let served = client.run("q2.3", &[]).expect("baseline through 2 shards");
    assert_eq!(served.result, expected, "baseline merged answer");

    // Kill shard 1. The router still holds pooled connections to it, so
    // the next scatter exercises the stale-conn path: read fails, the
    // same-replica fresh retry dials a dead address, the replica is
    // convicted, and — the range having no sibling — the client gets the
    // structured error: bounded, never a hang, never a partial answer.
    shard1.stop();
    let t0 = Instant::now();
    match client.run("q2.3", &[]) {
        Err(ClientError::Server(msg)) => {
            assert!(
                msg.contains("range 1 unavailable"),
                "want structured range error, got: {msg}"
            );
        }
        other => panic!("want ERR range 1 unavailable, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "shard death must fail fast, took {:?}",
        t0.elapsed()
    );

    // The router connection keeps serving …
    client
        .ping()
        .expect("router connection alive after shard death");
    // … and the survivor is genuinely unaffected: direct queries to
    // shard 0 still work (its own shard-local answer).
    let mut direct = QpptClient::connect(&*shard0_addr).expect("connect shard 0");
    direct.run("q1.1", &[]).expect("survivor still serves");
    direct.quit().expect("clean quit");

    // Restart shard 1 at the same address with the same engine. The
    // listener port was just freed; a short retry absorbs the race.
    let deadline = Instant::now() + Duration::from_secs(10);
    let shard1 = loop {
        match serve(engines[1].clone(), &shard1_addr) {
            Ok(h) => break h,
            Err(e) if Instant::now() >= deadline => panic!("rebind {shard1_addr}: {e}"),
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    };

    // The next query heals via a fresh dial — same merged bytes as before.
    let served = client.run("q2.3", &[]).expect("healed after shard restart");
    assert_eq!(served.result, expected, "merged answer after restart");

    client.quit().expect("clean quit");
    rh.stop();
    shard0.stop();
    shard1.stop();
    pool.shutdown();
}

/// Slow-shard and garbage injection through the chaos proxy: the
/// read-timeout bound actually fires (within `2 × (connect_timeout +
/// read_timeout)` even with the same-replica stale retry), relayed shard
/// `ERR`s carry their `shard <i> replica <j>:` origin, and a connection
/// that answered `ERR` with trailing junk is dropped — the next request
/// runs clean with zero retries.
#[test]
fn slow_shard_times_out_and_garbage_is_localized_not_repooled() {
    let pool = WorkerPool::new(2, 8);
    let defaults = PlanOptions::default()
        .with_parallelism(2)
        .with_par_index_build(true);
    let engine = Arc::new(
        ServeEngine::with_ssb_shard(SF, SEED, pool.clone(), defaults, 0, 1)
            .expect("shard engine builds"),
    );
    let shard = serve(engine, "127.0.0.1:0").expect("shard binds");
    let proxy = ChaosProxy::start(shard.addr().to_string()).expect("proxy binds");

    let connect_timeout = Duration::from_secs(1);
    let read_timeout = Duration::from_secs(2);
    let mut config = RouterConfig::new(vec![proxy.addr()]);
    config.connect_timeout = connect_timeout;
    config.read_timeout = read_timeout;
    config.retry_backoff = Duration::from_millis(5);
    config.retry_backoff_cap = Duration::from_millis(50);
    config.probe_interval = Duration::from_millis(50);
    config.probe_backoff_cap = Duration::from_millis(200);
    // Cache off: every repeated q2.3 here must genuinely traverse the
    // chaos proxy to exercise the injected fault.
    config.cache = RouterCacheConfig::disabled();
    let router = Arc::new(Router::new(config).with_obs(RouterObs::new(1, None)));
    router
        .wait_for_shards(Duration::from_secs(30))
        .expect("shard answers PING through the proxy");
    let rh = serve_router(router.clone(), "127.0.0.1:0").expect("router binds");
    let metric = |name: &str| -> i64 {
        let obs = router.obs().expect("obs attached");
        parse_exposition(&obs.render())
            .expect("router exposition parses")
            .value(name, &[])
            .expect("metric present")
    };

    let mut client = QpptClient::connect(rh.addr()).expect("connect router");
    let baseline = client.run("q2.3", &[]).expect("baseline through proxy");

    // Garbage: the shard "answers" ERR plus trailing junk. The error is
    // relayed with its replica origin; the desynchronized connection must
    // be dropped, so the next request is clean without spending retries.
    proxy.set_mode(ChaosMode::Garbage(vec![
        "ERR chaos garbage".to_string(),
        "trailing junk the router must never re-pool".to_string(),
    ]));
    match client.run("q2.3", &[]) {
        Err(ClientError::Server(msg)) => {
            assert!(
                msg.contains("shard 0 replica 0:") && msg.contains("chaos garbage"),
                "want localized relayed ERR, got: {msg}"
            );
        }
        other => panic!("want relayed chaos ERR, got {other:?}"),
    }
    proxy.set_mode(ChaosMode::Pass);
    let served = client.run("q2.3", &[]).expect("clean after garbage");
    assert_eq!(served.result, baseline.result, "bytes unchanged");
    assert_eq!(
        metric("qppt_router_retries_total"),
        0,
        "a dropped (never re-pooled) conn costs no retry on the next request"
    );

    // Slow shard: accept-then-hang. The read timeout must fire — once on
    // the pooled conn, once on the same-replica fresh retry — and the
    // structured error must land within 2 × (connect + read).
    proxy.set_mode(ChaosMode::Hang);
    let t0 = Instant::now();
    match client.run("q2.3", &[]) {
        Err(ClientError::Server(msg)) => {
            assert!(
                msg.contains("range 0 unavailable"),
                "want structured range error, got: {msg}"
            );
        }
        other => panic!("want ERR range 0 unavailable, got {other:?}"),
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed >= read_timeout,
        "the read timeout must actually fire, error came in {elapsed:?}"
    );
    assert!(
        elapsed < 2 * (connect_timeout + read_timeout),
        "slow-shard error must be bounded, took {elapsed:?}"
    );
    assert!(metric("qppt_router_retries_total") >= 1, "retry was spent");

    // Back to passing: the suspect replica heals (organically or via the
    // prober) and serves identical bytes again.
    proxy.set_mode(ChaosMode::Pass);
    let served = client.run("q2.3", &[]).expect("healed after hang");
    assert_eq!(served.result, baseline.result, "bytes unchanged after heal");

    client.quit().expect("clean quit");
    rh.stop();
    shard.stop();
    pool.shutdown();
}

#[test]
fn malformed_and_oversized_lines_get_drain_and_err() {
    let pool = WorkerPool::new(2, 8);
    let defaults = PlanOptions::default()
        .with_parallelism(2)
        .with_par_index_build(true);
    let engine = Arc::new(
        ServeEngine::with_ssb_shard(SF, SEED, pool.clone(), defaults, 0, 1)
            .expect("shard engine builds"),
    );
    let shard = serve(engine, "127.0.0.1:0").expect("shard binds");
    let router = Arc::new(Router::new(RouterConfig::new(vec![shard
        .addr()
        .to_string()])));
    router
        .wait_for_shards(Duration::from_secs(30))
        .expect("shard answers PING");
    let rh = serve_router(router, "127.0.0.1:0").expect("router binds");

    let stream = TcpStream::connect(rh.addr()).expect("raw connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut line = String::new();
    let mut ask = |w: &mut TcpStream, r: &mut BufReader<TcpStream>, req: &[u8]| -> String {
        w.write_all(req).expect("send");
        w.flush().expect("flush");
        line.clear();
        r.read_line(&mut line).expect("response line");
        line.trim_end().to_string()
    };

    // Unknown verb: structured ERR, connection keeps serving.
    let resp = ask(&mut writer, &mut reader, b"FROBNICATE now\n");
    assert!(resp.starts_with("ERR unknown verb"), "got: {resp}");

    // Client-supplied mode is rejected at the router (it owns the partial
    // protocol with its shards).
    let resp = ask(&mut writer, &mut reader, b"RUN q1.1 mode=partial\n");
    assert!(
        resp.starts_with("ERR") && resp.contains("mode"),
        "got: {resp}"
    );

    // Unknown query name is resolved locally — same message as a shard's.
    let resp = ask(&mut writer, &mut reader, b"RUN q9.9\n");
    assert!(resp.contains("unknown query q9.9"), "got: {resp}");

    // An oversized line (> 64 KiB default cap) is drained and answered
    // with ERR, not buffered without bound and not a dead connection.
    let mut big = vec![b'a'; 80 * 1024];
    big.push(b'\n');
    let resp = ask(&mut writer, &mut reader, &big);
    assert!(resp.starts_with("ERR request line exceeds"), "got: {resp}");

    // Still alive, still correct.
    let resp = ask(&mut writer, &mut reader, b"PING\n");
    assert_eq!(resp, "OK pong");

    rh.stop();
    shard.stop();
    pool.shutdown();
}
