//! The distributed observability contract, end to end over real TCP:
//!
//! * a routed `trace=on` query returns **one stitched span tree**: the
//!   router's `request` root over `scatter` (with every shard's
//!   plan/σ/exec/decode subtree grafted as `shard<i>`) and `merge`,
//!   valid under the strict checker (unique ids, parents first, child
//!   micros ≤ parent micros) — with result bytes identical to the
//!   untraced routed run;
//! * routed `METRICS` serves a well-formed merged exposition: every shard
//!   family labeled `shard="<i>"`, summed `shard="fleet"` samples, and
//!   the router's own `qppt_router_*` families;
//! * the fleet-summed cache families agree **exactly** with the routed
//!   `CACHE STATS` sums after a fixed query sequence.

use std::sync::Arc;
use std::time::Duration;

use qppt_core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt_obs::{parse_exposition, validate_span_tree};
use qppt_par::WorkerPool;
use qppt_router::{serve_router, Router, RouterCacheConfig, RouterConfig, RouterObs};
use qppt_server::{serve, QpptClient, ServeEngine, ServeObs, ServerHandle};
use qppt_ssb::{queries, SsbDb};

const SF: f64 = 0.01;
const SEED: u64 = 42;
const SHARDS: usize = 2;

struct Fleet {
    pool: Arc<WorkerPool>,
    shards: Vec<ServerHandle>,
    router: ServerHandle,
}

/// Starts an instrumented 2-shard fleet: every shard and the router carry
/// observability state, so `METRICS` works end to end.
fn start_fleet() -> Fleet {
    let pool = WorkerPool::new(4, 16);
    let defaults = PlanOptions::default()
        .with_parallelism(2)
        .with_par_index_build(true);
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..SHARDS {
        let engine = ServeEngine::with_ssb_shard(SF, SEED, pool.clone(), defaults, i, SHARDS)
            .expect("shard engine builds")
            .with_obs(ServeObs::new(None));
        let h = serve(Arc::new(engine), "127.0.0.1:0").expect("shard binds");
        addrs.push(h.addr().to_string());
        handles.push(h);
    }
    // Router-side caching stays off: these tests pin *exact* per-shard
    // request counts and full scatter traces across repeated identical
    // queries, which the merged-result tier would intentionally absorb
    // (router_equivalence covers the cached behavior).
    let mut config = RouterConfig::new(addrs);
    config.cache = RouterCacheConfig::disabled();
    let router = Router::new(config).with_obs(RouterObs::new(SHARDS, None));
    router
        .wait_for_shards(Duration::from_secs(30))
        .expect("shards answer PING");
    let router = serve_router(Arc::new(router), "127.0.0.1:0").expect("router binds");
    Fleet {
        pool,
        shards: handles,
        router,
    }
}

impl Fleet {
    fn stop(self) {
        self.router.stop();
        for h in self.shards {
            h.stop();
        }
        self.pool.shutdown();
    }
}

#[test]
fn routed_trace_stitches_every_shard_under_the_router_tree() {
    // The oracle: the sequential engine over the full, unsharded instance.
    let opts = PlanOptions::default();
    let mut ssb = SsbDb::generate(SF, SEED);
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).expect("indexes build");
    }
    let oracle = QpptEngine::new(&ssb.db);
    let expected = oracle.run(&queries::q3_1(), &opts).expect("oracle runs");

    let fleet = start_fleet();
    let mut client = QpptClient::connect(fleet.router.addr()).expect("connect router");

    let untraced = client.run("q3.1", &[]).expect("untraced routed run");
    assert_eq!(untraced.result, expected, "routed result matches oracle");
    assert!(untraced.stats.spans.is_empty(), "no trace ⇒ no spans");

    let traced = client.run("q3.1", &[("trace", "on")]).expect("traced run");
    assert_eq!(
        traced.result, expected,
        "tracing must not change routed bytes"
    );
    let spans = &traced.stats.spans;
    validate_span_tree(spans).expect("stitched span tree validates");

    // Shape: request root, scatter + merge under it, one shard<i> subtree
    // per shard under scatter, each covering the shard's pipeline spans.
    let root = &spans[0];
    assert_eq!(root.name, "request");
    assert_eq!(root.parent, None);
    let span = |name: &str| {
        spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("span {name} missing from {spans:?}"))
    };
    let scatter = span("scatter");
    assert_eq!(scatter.parent, Some(root.id));
    assert_eq!(span("merge").parent, Some(root.id));
    for i in 0..SHARDS {
        let shard = span(&format!("shard{i}"));
        assert_eq!(shard.parent, Some(scatter.id), "shard{i} under scatter");
        assert!(
            shard.micros <= scatter.micros,
            "shard{i} total ({}) exceeds the scatter wall ({})",
            shard.micros,
            scatter.micros
        );
        // The shard's own pipeline spans survived the graft: this was a
        // cold cached run, so plan/σ/exec/decode all appear per shard.
        for want in ["plan", "sigma", "exec", "decode"] {
            assert!(
                spans
                    .iter()
                    .any(|s| s.parent == Some(shard.id) && s.name == want),
                "shard{i} subtree missing {want}: {spans:?}"
            );
        }
    }

    client.quit().expect("clean quit");
    fleet.stop();
}

#[test]
fn routed_metrics_merge_fleet_sums_and_cache_stats_agree() {
    let fleet = start_fleet();
    let mut client = QpptClient::connect(fleet.router.addr()).expect("connect router");

    // A fixed sequence: 2 routed RUNs (cold + warm per shard) + 1 PING.
    client.run("q2.3", &[]).expect("cold routed run");
    client.run("q2.3", &[]).expect("warm routed run");
    client.ping().expect("ping");

    let stats = client.cache_stats().expect("routed CACHE STATS");
    let text = client.metrics().expect("routed METRICS");
    let expo = parse_exposition(&text).expect("merged exposition parses strictly");

    // Per-shard labels and the fleet sum: each shard served exactly the 2
    // scattered RUNs, and fleet = shard0 + shard1.
    let shard_runs: Vec<i64> = (0..SHARDS)
        .map(|i| {
            expo.value(
                "qppt_requests_total",
                &[("shard", &i.to_string()), ("verb", "RUN")],
            )
            .unwrap_or_else(|| panic!("missing shard {i} RUN counter"))
        })
        .collect();
    assert_eq!(shard_runs, vec![2, 2], "each shard saw both scattered RUNs");
    assert_eq!(
        expo.value(
            "qppt_requests_total",
            &[("shard", "fleet"), ("verb", "RUN")]
        ),
        Some(shard_runs.iter().sum()),
        "fleet sample must sum the shard samples"
    );

    // The router's own families ride along, un-labeled by shard.
    assert_eq!(
        expo.value("qppt_router_requests_total", &[("verb", "RUN")]),
        Some(2)
    );
    assert_eq!(
        expo.value("qppt_router_requests_total", &[("verb", "PING")]),
        Some(1)
    );
    assert_eq!(expo.value("qppt_router_merge_micros_count", &[]), Some(2));
    for i in 0..SHARDS {
        assert_eq!(
            expo.value(
                "qppt_router_shard_rtt_micros_count",
                &[("shard", &i.to_string())]
            ),
            Some(2),
            "one RTT observation per scattered RUN on shard {i}"
        );
    }
    assert_eq!(expo.value("qppt_router_retries_total", &[]), Some(0));
    assert!(expo.value("qppt_router_uptime_seconds", &[]).is_some());

    // CACHE STATS (fleet-summed key=value) and the fleet-summed cache
    // families agree exactly — both surfaces scrape the same per-shard
    // snapshots and sum them the same way.
    let stat = |key: &str| -> i64 {
        stats
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.parse().expect("numeric CACHE STATS field"))
            .unwrap_or_else(|| panic!("missing CACHE STATS field {key}"))
    };
    for (tier, prefix) in [
        ("result", "result"),
        ("dim", "dim"),
        ("selection", "selection"),
        ("plan", "plan"),
    ] {
        for (family, field) in [
            ("qppt_cache_hits_total", "hits"),
            ("qppt_cache_misses_total", "misses"),
            ("qppt_cache_invalidations_total", "invalidations"),
            ("qppt_cache_evictions_total", "evictions"),
            ("qppt_cache_expirations_total", "expirations"),
            ("qppt_cache_entries", "entries"),
            ("qppt_cache_bytes", "bytes"),
        ] {
            assert_eq!(
                expo.value(family, &[("shard", "fleet"), ("tier", tier)]),
                Some(stat(&format!("{prefix}_{field}"))),
                "fleet {family}{{tier={tier}}} must equal summed CACHE STATS \
                 {prefix}_{field}"
            );
        }
    }

    client.quit().expect("clean quit");
    fleet.stop();
}
