//! Property-based tests of the memory substrate: duplicate arenas preserve
//! content and order under arbitrary interleavings; key packing is
//! order-preserving for arbitrary widths.

use proptest::prelude::*;
use qppt_mem::{DupArena, KeyPacker, LinkedDupArena};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary interleaving of pushes across several lists: each list
    /// yields exactly its values, in insertion order, and both arena
    /// implementations agree.
    #[test]
    fn dup_arenas_preserve_order(ops in prop::collection::vec((0usize..8, any::<u64>()), 1..600)) {
        let mut seg = DupArena::<u64>::new();
        let mut lnk = LinkedDupArena::<u64>::new();
        let mut seg_lists = [None; 8];
        let mut lnk_lists = [None; 8];
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); 8];
        for &(slot, v) in &ops {
            model[slot].push(v);
            match &mut seg_lists[slot] {
                None => seg_lists[slot] = Some(seg.new_list(v)),
                Some(l) => seg.push(l, v),
            }
            match &mut lnk_lists[slot] {
                None => lnk_lists[slot] = Some(lnk.new_list(v)),
                Some(l) => lnk.push(l, v),
            }
        }
        for slot in 0..8 {
            let expect = &model[slot];
            match &seg_lists[slot] {
                None => prop_assert!(expect.is_empty()),
                Some(l) => {
                    prop_assert_eq!(l.len(), expect.len());
                    let got: Vec<u64> = seg.iter(l).copied().collect();
                    prop_assert_eq!(&got, expect);
                    // Segment scan concatenates to the same sequence.
                    let mut segscan = Vec::new();
                    seg.for_each_segment(l, |s| segscan.extend_from_slice(s));
                    prop_assert_eq!(&segscan, expect);
                    // Segment capacities double up to the page limit.
                    let caps = seg.segment_caps(l);
                    for w in caps.windows(2) {
                        prop_assert!(w[0] == 512 || w[0] == 2 * w[1] || w[0] == w[1]);
                    }
                }
            }
            if let Some(l) = &lnk_lists[slot] {
                let got: Vec<u64> = lnk.iter(l).copied().collect();
                prop_assert_eq!(&got, expect);
            }
        }
    }

    /// Packing is order-preserving: lexicographic part order == key order.
    #[test]
    fn key_packer_order(
        widths in prop::collection::vec(1u8..=15, 1..4),
        a_seed in any::<u64>(),
        b_seed in any::<u64>(),
    ) {
        let packer = KeyPacker::new(&widths).unwrap();
        let clamp = |seed: u64| -> Vec<u64> {
            widths
                .iter()
                .enumerate()
                .map(|(i, &w)| (seed.rotate_left(i as u32 * 13)) & ((1u64 << w) - 1))
                .collect()
        };
        let a = clamp(a_seed);
        let b = clamp(b_seed);
        let ka = packer.pack(&a).unwrap();
        let kb = packer.pack(&b).unwrap();
        prop_assert_eq!(a.cmp(&b), ka.cmp(&kb));
        prop_assert_eq!(packer.unpack(ka), a);
        prop_assert_eq!(packer.unpack(kb), b);
    }

    /// The PRNG's below() is exhaustive over small bounds.
    #[test]
    fn prng_below_covers_domain(seed in any::<u64>(), bound in 1u64..16) {
        let mut rng = qppt_mem::Xoshiro256StarStar::new(seed);
        let mut seen = vec![false; bound as usize];
        for _ in 0..(bound * 200) {
            seen[rng.below(bound) as usize] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }
}
