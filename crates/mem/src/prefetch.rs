//! Software prefetching shim used by the batch processing scheme of §2.3.
//!
//! The batch lookup of Algorithm 1 issues a prefetch for every job's child
//! node before descending a level, so the next level's nodes are already in
//! L1 when they are dereferenced. On x86_64 this maps to `prefetcht0`; on
//! other architectures it degrades to a no-op (batching still helps there by
//! amortising function-call overhead, as the paper notes).

/// Hints the CPU to fetch the cache line containing `ptr` into all cache
/// levels. Never faults, regardless of the pointer value.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        // SAFETY: `_mm_prefetch` is a pure hint; it is architecturally defined
        // to never fault, even for invalid addresses.
        core::arch::x86_64::_mm_prefetch(ptr as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

/// Prefetches the cache line holding `slice[index]`, if in bounds.
/// Out-of-bounds indexes are ignored (the hint would be useless, not unsafe).
#[inline(always)]
pub fn prefetch_slice_element<T>(slice: &[T], index: usize) {
    if index < slice.len() {
        prefetch_read(&slice[index] as *const T);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_valid_and_dangling_do_not_crash() {
        let v = vec![1u64, 2, 3];
        prefetch_read(&v[0]);
        prefetch_read(core::ptr::null::<u64>());
        prefetch_read(usize::MAX as *const u64);
        prefetch_slice_element(&v, 1);
        prefetch_slice_element(&v, 10_000);
    }
}
