//! Order-preserving key normalisation and composite keys.
//!
//! Prefix trees are order-preserving *on the binary representation of the
//! key* (§2.1), so every attribute value must be normalised to an unsigned
//! integer whose numeric order equals the attribute's logical order:
//!
//! * unsigned ints are used as-is;
//! * signed ints get their sign bit flipped ([`encode_i64`]);
//! * strings are replaced by codes from a sorted dictionary (built in
//!   `qppt-storage`), which is order-preserving because SSB string domains
//!   are known at load time.
//!
//! Composite keys ("year & brand1" in Fig. 5) pack several codes into one
//! `u64`, most-significant part first, so the tree's key order equals the
//! lexicographic order of the parts.

/// Maps `i64` to `u64` such that `a < b ⇔ encode(a) < encode(b)`.
#[inline]
pub fn encode_i64(v: i64) -> u64 {
    (v as u64) ^ (1u64 << 63)
}

/// Inverse of [`encode_i64`].
#[inline]
pub fn decode_i64(v: u64) -> i64 {
    (v ^ (1u64 << 63)) as i64
}

/// Packs two 32-bit codes into one 64-bit key, `hi` being more significant.
#[inline]
pub fn compose2(hi: u32, lo: u32) -> u64 {
    ((hi as u64) << 32) | lo as u64
}

/// Inverse of [`compose2`].
#[inline]
pub fn split2(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Error raised when a composite key cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyPackError {
    /// The sum of the part widths exceeds 64 bits.
    TooWide { total_bits: u32 },
    /// A part value does not fit its declared width.
    PartOverflow { part: usize, value: u64, bits: u8 },
    /// The number of values does not match the number of parts.
    ArityMismatch { expected: usize, got: usize },
}

impl core::fmt::Display for KeyPackError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KeyPackError::TooWide { total_bits } => {
                write!(f, "composite key needs {total_bits} bits, max is 64")
            }
            KeyPackError::PartOverflow { part, value, bits } => {
                write!(f, "part {part} value {value} does not fit in {bits} bits")
            }
            KeyPackError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} key parts, got {got}")
            }
        }
    }
}

impl std::error::Error for KeyPackError {}

/// Bit-packs a fixed sequence of parts into a `u64`, order-preserving with
/// respect to lexicographic part order. Used for composed group-by keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPacker {
    widths: Vec<u8>,
    shifts: Vec<u8>,
    total_bits: u8,
}

impl KeyPacker {
    /// Creates a packer for parts of the given bit widths (first part is the
    /// most significant). Fails if the widths sum to more than 64 bits or if
    /// any width is 0.
    pub fn new(widths: &[u8]) -> Result<Self, KeyPackError> {
        let total: u32 = widths.iter().map(|&w| w as u32).sum();
        if total > 64 {
            return Err(KeyPackError::TooWide { total_bits: total });
        }
        assert!(
            widths.iter().all(|&w| w > 0),
            "zero-width key parts are meaningless"
        );
        let mut shifts = Vec::with_capacity(widths.len());
        let mut used = 0u8;
        for &w in widths {
            used += w;
            shifts.push(total as u8 - used);
        }
        Ok(Self {
            widths: widths.to_vec(),
            shifts,
            total_bits: total as u8,
        })
    }

    /// Number of parts.
    pub fn arity(&self) -> usize {
        self.widths.len()
    }

    /// Total key width in bits; keys fit in `total_bits()` low bits.
    pub fn total_bits(&self) -> u8 {
        self.total_bits
    }

    /// Packs `parts` into a key.
    pub fn pack(&self, parts: &[u64]) -> Result<u64, KeyPackError> {
        if parts.len() != self.widths.len() {
            return Err(KeyPackError::ArityMismatch {
                expected: self.widths.len(),
                got: parts.len(),
            });
        }
        let mut key = 0u64;
        for (i, (&v, (&w, &s))) in parts
            .iter()
            .zip(self.widths.iter().zip(self.shifts.iter()))
            .enumerate()
        {
            let max = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            if v > max {
                return Err(KeyPackError::PartOverflow {
                    part: i,
                    value: v,
                    bits: w,
                });
            }
            key |= v << s;
        }
        Ok(key)
    }

    /// Unpacks a key into its parts.
    pub fn unpack(&self, key: u64) -> Vec<u64> {
        self.widths
            .iter()
            .zip(self.shifts.iter())
            .map(|(&w, &s)| {
                let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
                (key >> s) & mask
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_encoding_is_order_preserving() {
        let samples = [i64::MIN, -1_000_000, -1, 0, 1, 42, i64::MAX];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(a < b, encode_i64(a) < encode_i64(b), "{a} vs {b}");
                assert_eq!(decode_i64(encode_i64(a)), a);
            }
        }
    }

    #[test]
    fn compose2_roundtrip_and_order() {
        assert_eq!(split2(compose2(7, 9)), (7, 9));
        // (1, 5) < (2, 0) lexicographically and numerically.
        assert!(compose2(1, 5) < compose2(2, 0));
        assert!(compose2(1, 5) < compose2(1, 6));
    }

    #[test]
    fn packer_roundtrip() {
        let p = KeyPacker::new(&[16, 16, 16]).unwrap();
        let key = p.pack(&[1997, 24, 3]).unwrap();
        assert_eq!(p.unpack(key), vec![1997, 24, 3]);
        assert_eq!(p.total_bits(), 48);
    }

    #[test]
    fn packer_order_matches_lexicographic() {
        let p = KeyPacker::new(&[8, 8]).unwrap();
        let mut keys = Vec::new();
        let mut tuples = Vec::new();
        for a in [0u64, 1, 5, 255] {
            for b in [0u64, 3, 255] {
                keys.push(p.pack(&[a, b]).unwrap());
                tuples.push((a, b));
            }
        }
        for i in 0..keys.len() {
            for j in 0..keys.len() {
                assert_eq!(tuples[i] < tuples[j], keys[i] < keys[j]);
            }
        }
    }

    #[test]
    fn packer_rejects_overflow_and_bad_arity() {
        let p = KeyPacker::new(&[4, 4]).unwrap();
        assert!(matches!(
            p.pack(&[16, 0]),
            Err(KeyPackError::PartOverflow { part: 0, .. })
        ));
        assert!(matches!(
            p.pack(&[1]),
            Err(KeyPackError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn packer_rejects_too_wide() {
        assert!(matches!(
            KeyPacker::new(&[32, 32, 1]),
            Err(KeyPackError::TooWide { total_bits: 65 })
        ));
    }

    #[test]
    fn packer_full_64_bits() {
        let p = KeyPacker::new(&[64]).unwrap();
        assert_eq!(p.pack(&[u64::MAX]).unwrap(), u64::MAX);
        assert_eq!(p.unpack(u64::MAX), vec![u64::MAX]);
    }
}
