//! Duplicate handling (§2.4, Fig. 4 of the paper).
//!
//! Storing duplicates as linked lists of individually allocated nodes causes
//! random memory accesses during scans. QPPT instead stores the values of a
//! key in *contiguous segments*: the first segment holds 64 bytes worth of
//! values, and each further segment doubles in size until it reaches the
//! 4 KB page size, because hardware prefetchers do not cross page boundaries
//! anyway. New segments are put *in front* of the list (so appends never
//! traverse it); segments never straddle a slab, so every segment is a single
//! contiguous run of memory.
//!
//! [`DupArena`] implements that scheme. [`LinkedDupArena`] implements the
//! naive one-node-per-value linked list the paper argues against; it exists
//! solely so the ablation benchmark (Ablation A2 in DESIGN.md) can quantify
//! the difference.

const PAGE_BYTES: usize = 4096;
const MIN_SEG_BYTES: usize = 64;
/// Each slab holds this many pages; segments never straddle slabs.
const SLAB_PAGES: usize = 256;

const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Seg {
    /// Slab index.
    slab: u32,
    /// Element offset of this segment inside its slab.
    off: u32,
    /// Number of values currently stored in this segment.
    len: u32,
    /// Element capacity of this segment.
    cap: u32,
    /// Next (older) segment, or `NONE`.
    next: u32,
}

/// Handle to one key's duplicate list inside a [`DupArena`].
///
/// A list always holds at least one value (it is created by
/// [`DupArena::new_list`] with its first value), matching the paper's layout
/// where the first value lives with the key and the list holds the overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DupList {
    head: u32,
    len: u32,
}

impl DupList {
    /// Total number of values in the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// A duplicate list is never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Segmented duplicate-value storage with page-aligned growth (Fig. 4).
///
/// Values must be `Copy + Default`; `Default` lets slabs be pre-initialised
/// with safe code (the cost is a one-time zeroing per slab, which the OS does
/// for large allocations anyway).
#[derive(Debug)]
pub struct DupArena<V> {
    slabs: Vec<Vec<V>>,
    segs: Vec<Seg>,
    /// Remaining free elements at the tail of the last slab.
    tail_free: usize,
    elems_per_page: usize,
    slab_elems: usize,
    min_seg_elems: usize,
}

impl<V: Copy + Default> Default for DupArena<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Default> DupArena<V> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        let vsize = core::mem::size_of::<V>().max(1);
        let elems_per_page = (PAGE_BYTES / vsize).max(1);
        Self {
            slabs: Vec::new(),
            segs: Vec::new(),
            tail_free: 0,
            elems_per_page,
            slab_elems: elems_per_page * SLAB_PAGES,
            min_seg_elems: (MIN_SEG_BYTES / vsize).max(1),
        }
    }

    /// Starts a new list holding `first` as its only value.
    pub fn new_list(&mut self, first: V) -> DupList {
        let seg = self.alloc_seg(self.min_seg_elems, NONE);
        self.write(seg, 0, first);
        self.segs[seg as usize].len = 1;
        DupList { head: seg, len: 1 }
    }

    /// Appends a value to an existing list, growing it with a doubled,
    /// front-inserted segment when the head segment is full.
    pub fn push(&mut self, list: &mut DupList, value: V) {
        let head = list.head;
        let (len, cap) = {
            let s = &self.segs[head as usize];
            (s.len, s.cap)
        };
        if len < cap {
            self.write(head, len, value);
            self.segs[head as usize].len = len + 1;
        } else {
            // Grow: double up to the page limit, prepend the new segment.
            let next_cap = (cap as usize * 2)
                .min(self.elems_per_page)
                .max(self.min_seg_elems);
            let seg = self.alloc_seg(next_cap, head);
            self.write(seg, 0, value);
            self.segs[seg as usize].len = 1;
            list.head = seg;
        }
        list.len += 1;
    }

    /// Iterates the values of `list` in insertion order.
    pub fn iter<'a>(&'a self, list: &DupList) -> DupIter<'a, V> {
        // Segments are linked newest-first; collect the (short) chain and
        // replay it oldest-first. Chain length is O(log n + n/page).
        let mut chain = Vec::new();
        let mut cur = list.head;
        while cur != NONE {
            chain.push(cur);
            cur = self.segs[cur as usize].next;
        }
        chain.reverse();
        DupIter {
            arena: self,
            chain,
            seg_idx: 0,
            elem_idx: 0,
        }
    }

    /// Copies all values of `list`, in insertion order, into `out`.
    pub fn extend_into(&self, list: &DupList, out: &mut Vec<V>) {
        out.reserve(list.len());
        for v in self.iter(list) {
            out.push(*v);
        }
    }

    /// Calls `f` for each contiguous segment slice, oldest first. This is the
    /// scan entry point used by operators: each slice is sequential memory.
    pub fn for_each_segment<F: FnMut(&[V])>(&self, list: &DupList, mut f: F) {
        let mut chain = Vec::new();
        let mut cur = list.head;
        while cur != NONE {
            chain.push(cur);
            cur = self.segs[cur as usize].next;
        }
        for &seg in chain.iter().rev() {
            let s = &self.segs[seg as usize];
            let slab = &self.slabs[s.slab as usize];
            f(&slab[s.off as usize..s.off as usize + s.len as usize]);
        }
    }

    /// Number of segments a list occupies (observable growth behaviour).
    pub fn segment_count(&self, list: &DupList) -> usize {
        let mut n = 0;
        let mut cur = list.head;
        while cur != NONE {
            n += 1;
            cur = self.segs[cur as usize].next;
        }
        n
    }

    /// Capacity (in values) of each segment of a list, newest first.
    pub fn segment_caps(&self, list: &DupList) -> Vec<usize> {
        let mut caps = Vec::new();
        let mut cur = list.head;
        while cur != NONE {
            caps.push(self.segs[cur as usize].cap as usize);
            cur = self.segs[cur as usize].next;
        }
        caps
    }

    /// Total heap bytes held by the arena's slabs.
    pub fn allocated_bytes(&self) -> usize {
        self.slabs
            .iter()
            .map(|s| s.capacity() * core::mem::size_of::<V>())
            .sum()
    }

    #[inline]
    fn write(&mut self, seg: u32, idx: u32, value: V) {
        let s = self.segs[seg as usize];
        self.slabs[s.slab as usize][(s.off + idx) as usize] = value;
    }

    fn alloc_seg(&mut self, cap: usize, next: u32) -> u32 {
        debug_assert!(cap <= self.slab_elems);
        if self.tail_free < cap {
            // Fresh slab; any leftover tail in the previous slab is wasted,
            // mirroring page-aligned allocation slack.
            self.slabs.push(vec![V::default(); self.slab_elems]);
            self.tail_free = self.slab_elems;
        }
        let slab = (self.slabs.len() - 1) as u32;
        let off = (self.slab_elems - self.tail_free) as u32;
        self.tail_free -= cap;
        let id = self.segs.len() as u32;
        self.segs.push(Seg {
            slab,
            off,
            len: 0,
            cap: cap as u32,
            next,
        });
        id
    }
}

/// Insertion-order iterator over a [`DupList`].
pub struct DupIter<'a, V> {
    arena: &'a DupArena<V>,
    chain: Vec<u32>,
    seg_idx: usize,
    elem_idx: u32,
}

impl<'a, V: Copy + Default> Iterator for DupIter<'a, V> {
    type Item = &'a V;

    fn next(&mut self) -> Option<&'a V> {
        loop {
            let seg = *self.chain.get(self.seg_idx)?;
            let s = &self.arena.segs[seg as usize];
            if self.elem_idx < s.len {
                let slab = &self.arena.slabs[s.slab as usize];
                let v = &slab[(s.off + self.elem_idx) as usize];
                self.elem_idx += 1;
                return Some(v);
            }
            self.seg_idx += 1;
            self.elem_idx = 0;
        }
    }
}

/// Handle to a list inside [`LinkedDupArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkedList {
    head: u32,
    tail: u32,
    len: u32,
}

impl LinkedList {
    /// Number of values in the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// A list always holds at least one value.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[derive(Debug, Clone, Copy)]
struct LinkNode<V> {
    value: V,
    next: u32,
}

/// One-node-per-value duplicate storage — the strawman of §2.4.
///
/// Nodes are allocated in global insertion order, so the nodes of any one
/// key's list end up scattered across memory when inserts to different keys
/// interleave (the common case while an operator builds its output index).
/// Scanning a list then chases pointers across pages, defeating the hardware
/// prefetcher. Kept only for the Ablation A2 benchmark.
#[derive(Debug)]
pub struct LinkedDupArena<V> {
    nodes: Vec<LinkNode<V>>,
}

impl<V: Copy> Default for LinkedDupArena<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy> LinkedDupArena<V> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Starts a new list holding `first`.
    pub fn new_list(&mut self, first: V) -> LinkedList {
        let id = self.nodes.len() as u32;
        self.nodes.push(LinkNode {
            value: first,
            next: NONE,
        });
        LinkedList {
            head: id,
            tail: id,
            len: 1,
        }
    }

    /// Appends a value (O(1) via the tail pointer).
    pub fn push(&mut self, list: &mut LinkedList, value: V) {
        let id = self.nodes.len() as u32;
        self.nodes.push(LinkNode { value, next: NONE });
        self.nodes[list.tail as usize].next = id;
        list.tail = id;
        list.len += 1;
    }

    /// Iterates values in insertion order, chasing node pointers.
    pub fn iter<'a>(&'a self, list: &LinkedList) -> LinkedIter<'a, V> {
        LinkedIter {
            arena: self,
            cur: list.head,
        }
    }
}

/// Pointer-chasing iterator over a [`LinkedList`].
pub struct LinkedIter<'a, V> {
    arena: &'a LinkedDupArena<V>,
    cur: u32,
}

impl<'a, V: Copy> Iterator for LinkedIter<'a, V> {
    type Item = &'a V;

    fn next(&mut self) -> Option<&'a V> {
        if self.cur == NONE {
            return None;
        }
        let node = &self.arena.nodes[self.cur as usize];
        self.cur = node.next;
        Some(&node.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_value_list() {
        let mut a = DupArena::<u64>::new();
        let l = a.new_list(42);
        assert_eq!(l.len(), 1);
        assert_eq!(a.iter(&l).copied().collect::<Vec<_>>(), vec![42]);
        assert_eq!(a.segment_count(&l), 1);
    }

    #[test]
    fn insertion_order_preserved_across_segments() {
        let mut a = DupArena::<u64>::new();
        let mut l = a.new_list(0);
        for i in 1..10_000u64 {
            a.push(&mut l, i);
        }
        let got: Vec<u64> = a.iter(&l).copied().collect();
        let expect: Vec<u64> = (0..10_000).collect();
        assert_eq!(got, expect);
        assert_eq!(l.len(), 10_000);
    }

    #[test]
    fn segments_double_then_cap_at_page() {
        // u64: min seg = 64B/8 = 8 elems, page = 4096/8 = 512 elems.
        let mut a = DupArena::<u64>::new();
        let mut l = a.new_list(0);
        for i in 1..5000u64 {
            a.push(&mut l, i);
        }
        let mut caps = a.segment_caps(&l);
        caps.reverse(); // oldest first
        assert_eq!(&caps[..8], &[8, 16, 32, 64, 128, 256, 512, 512]);
        assert!(caps.iter().all(|&c| c <= 512));
    }

    #[test]
    fn interleaved_lists_stay_separate() {
        let mut a = DupArena::<u32>::new();
        let mut l1 = a.new_list(1);
        let mut l2 = a.new_list(1000);
        for i in 0..500u32 {
            a.push(&mut l1, 2 + i);
            a.push(&mut l2, 1001 + i);
        }
        let v1: Vec<u32> = a.iter(&l1).copied().collect();
        let v2: Vec<u32> = a.iter(&l2).copied().collect();
        assert_eq!(v1, (1..=501).collect::<Vec<_>>());
        assert_eq!(v2, (1000..=1500).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_segment_concatenates_to_full_list() {
        let mut a = DupArena::<u16>::new();
        let mut l = a.new_list(0);
        for i in 1..3000u16 {
            a.push(&mut l, i);
        }
        let mut got = Vec::new();
        a.for_each_segment(&l, |seg| got.extend_from_slice(seg));
        assert_eq!(got, (0..3000).collect::<Vec<_>>());
    }

    #[test]
    fn segment_runs_are_contiguous_slices() {
        let mut a = DupArena::<u64>::new();
        let mut l = a.new_list(7);
        for _ in 0..600 {
            a.push(&mut l, 7);
        }
        let mut seg_lens = Vec::new();
        a.for_each_segment(&l, |seg| seg_lens.push(seg.len()));
        assert_eq!(seg_lens.iter().sum::<usize>(), 601);
    }

    #[test]
    fn linked_arena_matches_segmented() {
        let mut seg = DupArena::<u32>::new();
        let mut lnk = LinkedDupArena::<u32>::new();
        let mut sl = seg.new_list(9);
        let mut ll = lnk.new_list(9);
        for i in 0..777u32 {
            seg.push(&mut sl, i);
            lnk.push(&mut ll, i);
        }
        let a: Vec<u32> = seg.iter(&sl).copied().collect();
        let b: Vec<u32> = lnk.iter(&ll).copied().collect();
        assert_eq!(a, b);
        assert_eq!(ll.len(), 778);
    }

    #[test]
    fn large_value_type_has_at_least_one_elem_per_seg() {
        #[derive(Copy, Clone, Default, PartialEq, Debug)]
        struct Big([u64; 32]); // 256 B > 64 B min segment
        let mut a = DupArena::<Big>::new();
        let mut l = a.new_list(Big([1; 32]));
        a.push(&mut l, Big([2; 32]));
        a.push(&mut l, Big([3; 32]));
        let got: Vec<Big> = a.iter(&l).copied().collect();
        assert_eq!(got.len(), 3);
        assert_eq!(got[2], Big([3; 32]));
    }

    #[test]
    fn allocated_bytes_grows_with_content() {
        let mut a = DupArena::<u64>::new();
        assert_eq!(a.allocated_bytes(), 0);
        let _ = a.new_list(1);
        assert!(a.allocated_bytes() > 0);
    }
}
