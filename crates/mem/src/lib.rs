//! Memory substrate for the QPPT reproduction.
//!
//! This crate hosts the low-level building blocks shared by the index
//! structures and the query engine:
//!
//! * [`dup`] — the paper's duplicate handling (§2.4, Fig. 4): values for a key
//!   are stored in contiguous memory segments that double in size from 64 B up
//!   to the 4 KB page limit, so duplicate scans stay inside hardware-prefetch
//!   friendly memory. A deliberately naive linked-list arena is included as
//!   the strawman the paper argues against (used by the ablation bench).
//! * [`key`] — order-preserving normalisation of attribute values to `u64`
//!   keys and bit-packed composite keys (for composed group-by keys).
//! * [`prefetch`] — a thin software-prefetch shim used by the batch processing
//!   scheme of §2.3 (Algorithm 1).
//! * [`prng`] — deterministic pseudo-random number generation (splitmix64 and
//!   xoshiro256**) so that generated benchmark data is bit-identical across
//!   runs and toolchains.

pub mod dup;
pub mod key;
pub mod prefetch;
pub mod prng;

pub use dup::{DupArena, DupList, LinkedDupArena, LinkedList};
pub use key::{compose2, decode_i64, encode_i64, split2, KeyPacker};
pub use prng::{SplitMix64, Xoshiro256StarStar};
