//! Deterministic pseudo-random number generators.
//!
//! The SSB generator and the index micro-benchmarks must produce
//! bit-identical data across runs, platforms and dependency upgrades, so we
//! embed two tiny public-domain generators instead of depending on `rand`:
//! splitmix64 (used for seeding and cheap hashing) and xoshiro256**
//! (the main generator).

/// Sebastiano Vigna's splitmix64. Passes BigCrush; one multiply-xor step per
/// output. Mainly used to seed [`Xoshiro256StarStar`] and as a cheap mixer.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One-shot splitmix64 mix, useful as a stateless hash of an index.
#[inline]
pub fn mix64(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// Blackman & Vigna's xoshiro256**: the workhorse generator for data
/// generation and benchmark key streams.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the full 256-bit state from a single `u64` via splitmix64, as
    /// recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift reduction.
    /// `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Returns `true` with probability `num / den`.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Picks a uniformly random element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// A random permutation of `0..n` as `u32`s. Used to build dense random
    /// key streams for the Fig. 3 benches ("randomly picked from a sequential
    /// key range").
    pub fn permutation(&mut self, n: u32) -> Vec<u32> {
        let mut v: Vec<u32> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C source.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(a, sm2.next_u64());
        assert_eq!(b, sm2.next_u64());
    }

    #[test]
    fn xoshiro_deterministic() {
        let mut a = Xoshiro256StarStar::new(42);
        let mut b = Xoshiro256StarStar::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_different_seeds_differ() {
        let mut a = Xoshiro256StarStar::new(1);
        let mut b = Xoshiro256StarStar::new(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Xoshiro256StarStar::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = Xoshiro256StarStar::new(99);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range_inclusive(3, 6);
            assert!((3..=6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi, "both endpoints should be reachable");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = Xoshiro256StarStar::new(5);
        let p = r.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut r = Xoshiro256StarStar::new(11);
        let mut v = vec![1, 1, 2, 3, 5, 8, 13];
        let mut expect = v.clone();
        r.shuffle(&mut v);
        expect.sort_unstable();
        let mut got = v.clone();
        got.sort_unstable();
        assert_eq!(expect, got);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xoshiro256StarStar::new(3);
        for _ in 0..100 {
            assert!(r.chance(1, 1));
            assert!(!r.chance(0, 5));
        }
    }
}
