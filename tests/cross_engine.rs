//! Workspace-spanning integration tests: all three engines plus the oracle
//! agree on every SSB query, through the public facade API.

use qppt::columnar::{ColumnAtATimeEngine, ColumnDb, VectorAtATimeEngine};
use qppt::core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt::ssb::{queries, run_reference, SsbDb};
use qppt::storage::QueryResult;

fn canonical(r: QueryResult) -> QueryResult {
    r.canonicalized()
}

#[test]
fn four_way_agreement_on_all_queries() {
    let mut ssb = SsbDb::generate(0.02, 20260609);
    let opts = PlanOptions::default();
    for q in queries::all_queries() {
        prepare_indexes(&mut ssb.db, &q, &opts).unwrap();
    }
    let snap = ssb.db.snapshot();
    let engine = QpptEngine::new(&ssb.db);
    let cdb = ColumnDb::new(&ssb.db, snap);
    for q in queries::all_queries() {
        let oracle = canonical(run_reference(&ssb.db, &q, snap).unwrap());
        let a = canonical(engine.run(&q, &opts).unwrap());
        let b = canonical(VectorAtATimeEngine::run(&cdb, &q).unwrap());
        let c = canonical(ColumnAtATimeEngine::run(&cdb, &q).unwrap());
        assert_eq!(a, oracle, "{}: QPPT vs oracle", q.id);
        assert_eq!(b, oracle, "{}: vector vs oracle", q.id);
        assert_eq!(c, oracle, "{}: column vs oracle", q.id);
    }
}

#[test]
fn option_matrix_is_result_invariant() {
    let mut ssb = SsbDb::generate(0.01, 77);
    let mut all_opts: Vec<PlanOptions> = [true, false]
        .into_iter()
        .flat_map(|sj| {
            [2usize, 3, 5].into_iter().flat_map(move |ways| {
                [1usize, 512].into_iter().map(move |buf| {
                    PlanOptions::default()
                        .with_select_join(sj)
                        .with_max_join_ways(ways)
                        .with_join_buffer(buf)
                })
            })
        })
        .collect();
    all_opts.push(PlanOptions::default().with_multidim(true));
    all_opts.push(PlanOptions::default().with_set_ops(true));
    all_opts.push(
        PlanOptions::default()
            .with_prefer_kiss(false)
            .with_multidim(true),
    );
    for q in queries::all_queries() {
        for o in &all_opts {
            prepare_indexes(&mut ssb.db, &q, o).unwrap();
        }
    }
    let engine = QpptEngine::new(&ssb.db);
    for q in [queries::q1_1(), queries::q2_3(), queries::q4_1()] {
        let reference = canonical(engine.run(&q, &all_opts[0]).unwrap());
        for (i, o) in all_opts.iter().enumerate().skip(1) {
            let got = canonical(engine.run(&q, o).unwrap());
            assert_eq!(got, reference, "{}: option set #{i} {o:?}", q.id);
        }
    }
}

#[test]
fn generator_is_cross_run_deterministic() {
    let a = SsbDb::generate(0.01, 123);
    let b = SsbDb::generate(0.01, 123);
    let ta = a.db.table("lineorder").unwrap().table();
    let tb = b.db.table("lineorder").unwrap().table();
    assert_eq!(ta.row_count(), tb.row_count());
    for rid in (0..ta.row_count() as u32).step_by(533) {
        assert_eq!(ta.row(rid), tb.row(rid));
    }
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time check that every subsystem is reachable through `qppt::`.
    let _trie = qppt::trie::PrefixTree::<u32>::pt4_32();
    let _kiss = qppt::kiss::KissTree::<u32>::new(qppt::kiss::KissConfig::small(false));
    let _chained = qppt::hash::ChainedHashMap::<u32>::new();
    let _open = qppt::hash::OpenHashMap::<u32>::new();
    let _rng = qppt::mem::Xoshiro256StarStar::new(1);
    let _db = qppt::storage::Database::new();
}
