//! Transactional isolation across the whole stack: writes through the
//! catalog (with index maintenance) must be visible exactly to the right
//! snapshots on every engine.

use qppt::columnar::{ColumnAtATimeEngine, ColumnDb, VectorAtATimeEngine};
use qppt::core::{prepare_indexes, PlanOptions, QpptEngine};
use qppt::ssb::{queries, run_reference, SsbDb};
use qppt::storage::Value;

/// Inserts a lineorder row that matches Q1.1 and returns the revenue delta
/// it contributes to Q1.1's `sum(lo_extendedprice * lo_discount)`.
fn insert_matching_row(ssb: &mut SsbDb) -> i64 {
    let ship = {
        let lo = ssb.db.table("lineorder").unwrap().table();
        lo.value(0, lo.schema().col("lo_shipmode").unwrap())
    };
    let extended = 7000i64;
    let discount = 3i64;
    ssb.db
        .insert_row(
            "lineorder",
            &[
                Value::Int(777_777),
                Value::Int(1),
                Value::Int(1),
                Value::Int(1),
                Value::Int(1),
                Value::Int(19930301),
                Value::Int(20),       // quantity < 25
                Value::Int(extended), // extendedprice
                Value::Int(extended), // ordtotalprice
                Value::Int(discount), // discount in [1,3]
                Value::Int(extended * (100 - discount) / 100),
                Value::Int(100),
                Value::Int(0),
                ship,
            ],
        )
        .unwrap();
    extended * discount
}

#[test]
fn insert_then_delete_walks_snapshots_consistently() {
    let mut ssb = SsbDb::generate(0.01, 55);
    let q = queries::q1_1();
    let opts = PlanOptions::default();
    prepare_indexes(&mut ssb.db, &q, &opts).unwrap();

    let s0 = ssb.db.snapshot();
    let base = {
        let engine = QpptEngine::new(&ssb.db);
        engine.run_at(&q, &opts, s0).unwrap().0.rows[0].agg_values[0]
    };

    let delta = insert_matching_row(&mut ssb);
    let s1 = ssb.db.snapshot();

    // Delete some matching row that existed at s0: find one via the oracle's
    // predicate logic — simplest is to delete the inserted row again later,
    // so first verify s1.
    let engine = QpptEngine::new(&ssb.db);
    assert_eq!(
        engine.run_at(&q, &opts, s1).unwrap().0.rows[0].agg_values[0],
        base + delta
    );
    assert_eq!(
        engine.run_at(&q, &opts, s0).unwrap().0.rows[0].agg_values[0],
        base,
        "old snapshot must not see the insert"
    );

    // Delete the new row version (it is the last rid).
    let new_rid = ssb.db.table("lineorder").unwrap().version_count() as u32 - 1;
    ssb.db.delete_row("lineorder", new_rid).unwrap();
    let s2 = ssb.db.snapshot();
    let engine = QpptEngine::new(&ssb.db);
    assert_eq!(
        engine.run_at(&q, &opts, s2).unwrap().0.rows[0].agg_values[0],
        base,
        "delete takes effect for new snapshots"
    );
    assert_eq!(
        engine.run_at(&q, &opts, s1).unwrap().0.rows[0].agg_values[0],
        base + delta,
        "snapshot between insert and delete still sees the row"
    );

    // All engines agree at every snapshot.
    for snap in [s0, s1, s2] {
        let oracle = run_reference(&ssb.db, &q, snap).unwrap().canonicalized();
        let cdb = ColumnDb::new(&ssb.db, snap);
        assert_eq!(
            VectorAtATimeEngine::run(&cdb, &q).unwrap().canonicalized(),
            oracle
        );
        assert_eq!(
            ColumnAtATimeEngine::run(&cdb, &q).unwrap().canonicalized(),
            oracle
        );
        assert_eq!(
            engine.run_at(&q, &opts, snap).unwrap().0.canonicalized(),
            oracle
        );
    }
}

#[test]
fn update_moves_a_tuple_between_groups() {
    // Update a part's brand: Q2.x group totals must move accordingly,
    // and only for snapshots after the update.
    let mut ssb = SsbDb::generate(0.01, 56);
    let q = queries::q2_1();
    let opts = PlanOptions::default();
    prepare_indexes(&mut ssb.db, &q, &opts).unwrap();

    let s0 = ssb.db.snapshot();
    let before = {
        let engine = QpptEngine::new(&ssb.db);
        engine.run_at(&q, &opts, s0).unwrap().0
    };

    // Update part rid 0 via delete+insert through the MVCC API.
    let old_row: Vec<Value> = {
        let part = ssb.db.table("part").unwrap().table();
        (0..part.schema().width())
            .map(|c| part.value(0, c))
            .collect()
    };
    // Change its category to something matched by Q2.1 only if it was not;
    // either way the update must keep engines consistent with the oracle.
    let mut new_row = old_row.clone();
    new_row[3] = Value::str("MFGR#12");
    new_row[4] = Value::str("MFGR#1221");
    ssb.db.delete_row("part", 0).unwrap();
    ssb.db.insert_row("part", &new_row).unwrap();
    let s1 = ssb.db.snapshot();

    let engine = QpptEngine::new(&ssb.db);
    let after_old_snap = engine.run_at(&q, &opts, s0).unwrap().0;
    assert_eq!(after_old_snap, before, "pre-update snapshot sees old state");

    let oracle_new = run_reference(&ssb.db, &q, s1).unwrap().canonicalized();
    let got_new = engine.run_at(&q, &opts, s1).unwrap().0.canonicalized();
    assert_eq!(got_new, oracle_new, "post-update snapshot matches oracle");
}
